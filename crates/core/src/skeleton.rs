//! The parameterized parser skeleton (§5 / Table 2).
//!
//! A skeleton is a TCAM machine with holes: `S` hardware states (one
//! synthetic entry state, one state per field-extraction slot under Opt3,
//! plus spare key-checking states), each with `E` prioritized entries whose
//! value, mask, activity and next-state are symbolic, and per-state
//! key-source allocation variables over the spec's key bit groups.
//!
//! **Canonical key layout.**  Instead of the shift-based `key_sel`
//! construction of the paper's Appendix 12, every state's key is laid out
//! over the *full* canonical group vector: group `g`'s bits occupy a fixed
//! range, contributing their value when `Alloc[g][s]` holds and zeros
//! otherwise, with entry masks constrained to care only about allocated
//! groups.  This is an equivalent encoding of `Alloc`/`Trankey`/`Lookahead`
//! from Table 2 that needs no symbolic shifting, and it makes Opt4's
//! constant candidates line up positionally.

use crate::reduce::Reduced;
use crate::OptConfig;
use ph_bits::{bits_for, BitString};
use ph_hw::{Arch, DeviceProfile, HwEntry, HwNext, HwState, HwStateId, TcamProgram};
use ph_ir::{analysis, FieldId, KeyPart, NextState, ParserSpec, StateId};
use ph_smt::{Smt, Term};

/// Where a key group's bits come from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroupSource {
    /// Bits `[start, end)` of a field's extracted value.
    Slice {
        /// Source field.
        field: FieldId,
        /// First bit.
        start: usize,
        /// One past the last bit.
        end: usize,
    },
    /// Bits `[start, end)` ahead of the extraction cursor.
    Lookahead {
        /// First bit relative to the cursor.
        start: usize,
        /// One past the last bit.
        end: usize,
    },
}

/// One indivisible key-source unit (Opt5's grouping granularity).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Group {
    /// The bits' origin.
    pub source: GroupSource,
    /// Offset of this group in the canonical key layout.
    pub offset: usize,
    /// Width in bits.
    pub width: usize,
}

/// The skeleton's static structure (no solver terms).
#[derive(Clone, Debug)]
pub struct Shape {
    /// Field *run* hosted by each extraction slot, in first-extraction
    /// order; slot `i` is hardware state `i + 1`.  A run is a maximal
    /// sequence of consecutively extracted fields within one spec state,
    /// split after every field that contributes transition-key bits — the
    /// spec extracts a state's fields atomically before keying, so no
    /// correct implementation can interleave checks inside a run, and
    /// bundling them keeps the unrolling depth proportional to the number
    /// of *decisions* rather than the number of fields.
    pub slots: Vec<Vec<FieldId>>,
    /// Extra no-extraction states appended after the slots (key splitting).
    pub spares: usize,
    /// Key-source groups in canonical order.
    pub groups: Vec<Group>,
    /// Total canonical key width (at least 1).
    pub canon_width: usize,
    /// Entries per state.
    pub entries_per_state: usize,
    /// Whether entries may transition backwards (single-table loops).
    pub loopy: bool,
    /// Opt4 value candidates in canonical layout (None = free values).
    pub value_candidates: Option<Vec<BitString>>,
    /// Opt4 mask candidates in canonical layout (None = free masks):
    /// spec pattern masks, per-target cluster-agreement masks (§6.4.2) and
    /// their single-group restrictions (§6.4.3 subranges).
    pub mask_candidates: Option<Vec<BitString>>,
    /// Whether extraction slots are preallocated (Opt3).
    pub opt3: bool,
    /// Largest number of extraction runs any single spec state produces
    /// (bounds the loopy skeleton's per-visit slot count).
    pub max_runs_per_state: usize,
    /// Reduced field widths, indexed by `FieldId`.
    pub field_widths: Vec<usize>,
}

impl Shape {
    /// Total hardware states: entry + slots + spares.
    pub fn state_count(&self) -> usize {
        1 + self.slots.len() + self.spares
    }

    /// Code for `accept` in next/state registers.
    pub fn accept_code(&self) -> usize {
        self.state_count()
    }

    /// Code for `reject`.
    pub fn reject_code(&self) -> usize {
        self.state_count() + 1
    }

    /// Code for "ran out of input".
    pub fn ooi_code(&self) -> usize {
        self.state_count() + 2
    }

    /// Width of state/next registers.
    pub fn state_bits(&self) -> u32 {
        bits_for(self.ooi_code() as u64)
    }

    /// Width of the extraction-selector registers (0 = none, `i` = slot `i`).
    pub fn ext_bits(&self) -> u32 {
        bits_for(self.slots.len() as u64)
    }
}

/// Per-entry solver terms.
#[derive(Clone, Debug)]
pub struct EntryTerms {
    /// Entry participates in matching.
    pub active: Term,
    /// Canonical-layout value.
    pub value: Term,
    /// Canonical-layout mask (1 = care).
    pub mask: Term,
    /// Next-state code.
    pub next: Term,
}

/// All solver terms of a skeleton instance — either fresh variables
/// (synthesis) or constants from a model (verification).
#[derive(Clone, Debug)]
pub struct SkelTerms {
    /// `alloc[s][g]`: group `g` is part of state `s`'s key.
    pub alloc: Vec<Vec<Term>>,
    /// `entries[s][j]` in priority order.
    pub entries: Vec<Vec<EntryTerms>>,
    /// Extraction selector per state (constant under Opt3).
    pub ext_sel: Vec<Term>,
}

/// Variable bundle produced for the synthesis solver.
pub struct SkelVars {
    /// The shared terms used by the simulation encoding.
    pub terms: SkelTerms,
    /// Pipeline-stage variables (IPU only).
    pub stage: Option<Vec<Term>>,
    /// Total number of active entries (for budget minimization).
    pub active_count: Term,
    /// Width of `active_count`.
    pub count_bits: u32,
    /// Total decision-variable bits — the reported search-space size.
    pub search_space_bits: usize,
}

/// Builds the skeleton structure from the reduced spec.
///
/// # Errors
///
/// Returns a message for unsupported shapes (e.g. lookahead beyond the
/// device's window with no way to allocate it).
pub fn build_shape(
    reduced: &Reduced,
    device: &DeviceProfile,
    opts: OptConfig,
    loopy: bool,
    spare_override: Option<usize>,
) -> Result<Shape, String> {
    let spec = &reduced.spec;

    // Extraction slots: per reachable state, runs of consecutive fields
    // split after keyed fields.  Loopy skeletons dedup identical runs so a
    // loop can reuse one state.
    let keyed: Vec<bool> = analysis::key_bits_used(spec)
        .iter()
        .map(|bits| !bits.is_empty())
        .collect();
    let mut slots: Vec<Vec<FieldId>> = Vec::new();
    for s in analysis::reachable_states(spec) {
        let mut run: Vec<FieldId> = Vec::new();
        for &f in &spec.state(s).extracts {
            run.push(f);
            if keyed[f.0] {
                slots.push(std::mem::take(&mut run));
            }
        }
        if !run.is_empty() {
            slots.push(run);
        }
    }
    let mut max_runs_per_state = 0usize;
    for s in analysis::reachable_states(spec) {
        let runs = spec.state(s).extracts.iter().filter(|f| keyed[f.0]).count()
            + usize::from(spec.state(s).extracts.last().is_some_and(|f| !keyed[f.0]));
        max_runs_per_state = max_runs_per_state.max(runs);
    }
    if loopy {
        let mut dedup: Vec<Vec<FieldId>> = Vec::new();
        for r in slots {
            if !dedup.contains(&r) {
                dedup.push(r);
            }
        }
        slots = dedup;
    }

    // Key-source groups.
    let mut groups_src: Vec<GroupSource> = Vec::new();
    if opts.opt1_spec_keys {
        for (f, a, b) in analysis::key_bit_groups(spec) {
            if opts.opt5_grouping {
                groups_src.push(GroupSource::Slice {
                    field: f,
                    start: a,
                    end: b,
                });
            } else {
                for bit in a..b {
                    groups_src.push(GroupSource::Slice {
                        field: f,
                        start: bit,
                        end: bit + 1,
                    });
                }
            }
        }
    } else {
        // Naive mode: every bit of every extracted field is allocatable.
        let mut seen = vec![false; spec.fields.len()];
        for f in slots.iter().flatten().copied() {
            if seen[f.0] {
                continue;
            }
            seen[f.0] = true;
            for bit in 0..spec.field(f).width {
                groups_src.push(GroupSource::Slice {
                    field: f,
                    start: bit,
                    end: bit + 1,
                });
            }
        }
    }
    // Lookahead groups come from the spec's lookahead key parts (deduped);
    // windows beyond the device limit are rejected.
    let mut lookaheads: Vec<(usize, usize)> = spec
        .states
        .iter()
        .flat_map(|st| {
            st.key.iter().filter_map(|kp| match *kp {
                KeyPart::Lookahead { start, end } => Some((start, end)),
                _ => None,
            })
        })
        .collect();
    lookaheads.sort_unstable();
    lookaheads.dedup();
    for (a, b) in lookaheads {
        if b > device.lookahead_limit {
            return Err(format!(
                "spec lookahead reaches bit {b}, device window is {}",
                device.lookahead_limit
            ));
        }
        if opts.opt5_grouping {
            groups_src.push(GroupSource::Lookahead { start: a, end: b });
        } else {
            for bit in a..b {
                groups_src.push(GroupSource::Lookahead {
                    start: bit,
                    end: bit + 1,
                });
            }
        }
    }

    // Split any group wider than the device's key limit into chunks — a
    // group must be allocatable to a single state, and Opt4.3's subrange
    // splitting needs sub-group granularity for wide constants.
    let chunk_limit = device.key_limit.max(1);
    let mut groups = Vec::with_capacity(groups_src.len());
    let mut offset = 0;
    for src in groups_src {
        let (a, b) = match src {
            GroupSource::Slice { start, end, .. } | GroupSource::Lookahead { start, end } => {
                (start, end)
            }
        };
        let mut lo = a;
        while lo < b {
            let hi = (lo + chunk_limit).min(b);
            let part = match src {
                GroupSource::Slice { field, .. } => GroupSource::Slice {
                    field,
                    start: lo,
                    end: hi,
                },
                GroupSource::Lookahead { .. } => GroupSource::Lookahead { start: lo, end: hi },
            };
            groups.push(Group {
                source: part,
                offset,
                width: hi - lo,
            });
            offset += hi - lo;
            lo = hi;
        }
    }
    let canon_width = offset.max(1);

    // Entry budget per state.
    let max_t = spec
        .states
        .iter()
        .map(|s| s.transitions.len())
        .max()
        .unwrap_or(0);
    let entries_per_state = (max_t + 2).clamp(2, 12);

    // Spare states for key splitting: splitting a wide key over `c` chunks
    // needs up to one continuation state per distinct higher-chunk prefix,
    // so budget (chunks − 1) × (distinct first-chunk patterns) for the
    // widest-keyed state, capped.
    let spares = spare_override.unwrap_or_else(|| {
        let mut need = 0usize;
        for st in &spec.states {
            let kw = st.key_width();
            if device.key_limit == 0 || kw <= device.key_limit {
                continue;
            }
            let chunks = kw.div_ceil(device.key_limit);
            let mut firsts: Vec<String> = st
                .transitions
                .iter()
                .map(|t| t.pattern.slice(0, device.key_limit.min(kw)).to_string())
                .collect();
            firsts.sort();
            firsts.dedup();
            need = need.max((chunks - 1) * firsts.len().max(1));
        }
        need.min(6)
    });

    // Opt4 candidate values and masks in canonical layout.
    let (value_candidates, mask_candidates) = if opts.opt4_constants {
        let (v, m) = candidate_sets(spec, &groups, canon_width);
        (Some(v), Some(m))
    } else {
        (None, None)
    };

    Ok(Shape {
        slots,
        spares,
        groups,
        canon_width,
        entries_per_state,
        loopy,
        value_candidates,
        mask_candidates,
        opt3: opts.opt3_prealloc,
        max_runs_per_state,
        field_widths: spec.fields.iter().map(|f| f.width).collect(),
    })
}

/// Projects a spec state's pattern into the canonical layout; `None` when a
/// key part has no covering group (cannot happen when groups were derived
/// from the same spec).
fn project_pattern(
    spec: &ParserSpec,
    state: StateId,
    pattern: &ph_bits::Ternary,
    groups: &[Group],
    canon_width: usize,
) -> Option<(BitString, BitString)> {
    let mut value = BitString::zeros(canon_width);
    let mut mask = BitString::zeros(canon_width);
    let mut po = 0usize;
    for kp in &spec.state(state).key {
        let w = kp.width();
        // Place each pattern bit individually: a key part may span several
        // chunked groups.
        for i in 0..w {
            if !pattern.mask().get(po + i) {
                continue;
            }
            let place = groups.iter().find_map(|g| match (*kp, g.source) {
                (
                    KeyPart::Slice { field, start, .. },
                    GroupSource::Slice {
                        field: gf,
                        start: gs,
                        end: ge,
                    },
                ) if field == gf && start + i >= gs && start + i < ge => {
                    Some(g.offset + (start + i - gs))
                }
                (
                    KeyPart::Lookahead { start, .. },
                    GroupSource::Lookahead { start: gs, end: ge },
                ) if start + i >= gs && start + i < ge => Some(g.offset + (start + i - gs)),
                _ => None,
            })?;
            mask.set(place, true);
            value.set(place, pattern.value().get(po + i));
        }
        po += w;
    }
    Some((value, mask))
}

/// The Opt4 candidate sets in canonical layout.
///
/// **Values** (§6.4.1): zero, every spec pattern's value, and pairwise
/// OR-combinations of patterns from different states with disjoint group
/// footprints (the concatenation candidates).
///
/// **Masks** (§6.4.2/§6.4.3): zero, every spec pattern's mask, the
/// *cluster-agreement* mask per (state, target) — care bits on which all
/// rules sharing a target agree, which is exactly the mask that merges the
/// cluster — pairwise-agreement masks, OR-combinations mirroring the value
/// combos, and each candidate's restriction to a single group (the
/// hardware-width subranges used for key splitting).
fn candidate_sets(
    spec: &ParserSpec,
    groups: &[Group],
    canon_width: usize,
) -> (Vec<BitString>, Vec<BitString>) {
    const CAP: usize = 128;
    let mut singles: Vec<(BitString, BitString, usize, NextState)> = Vec::new();
    for (si, st) in spec.states.iter().enumerate() {
        for tr in &st.transitions {
            if let Some((v, m)) =
                project_pattern(spec, StateId(si), &tr.pattern, groups, canon_width)
            {
                singles.push((v, m, si, tr.next));
            }
        }
    }

    let mut values: Vec<BitString> = vec![BitString::zeros(canon_width)];
    let mut masks: Vec<BitString> = vec![BitString::zeros(canon_width)];
    let push = |list: &mut Vec<BitString>, b: BitString| {
        if !list.contains(&b) && list.len() < CAP {
            list.push(b);
        }
    };
    for (v, m, _, _) in &singles {
        push(&mut values, v.clone());
        push(&mut masks, m.clone());
    }

    // Agreement masks per (state, target) cluster and per pair.
    let mut keys: Vec<(usize, NextState)> = singles.iter().map(|(_, _, s, n)| (*s, *n)).collect();
    keys.sort_by_key(|(s, n)| (*s, format!("{n:?}")));
    keys.dedup();
    for (s, n) in keys {
        let members: Vec<&(BitString, BitString, usize, NextState)> = singles
            .iter()
            .filter(|(_, _, si, ni)| *si == s && *ni == n)
            .collect();
        if members.len() < 2 {
            continue;
        }
        // Whole-cluster agreement.
        let mut agree = members[0].1.clone();
        for w in members.windows(2) {
            let diff = w[0].0.xor(&w[1].0);
            agree = agree.and(&diff.not()).and(&w[1].1);
        }
        push(&mut masks, agree);
        // Pairwise agreements.
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let diff = members[i].0.xor(&members[j].0);
                let m = members[i].1.and(&members[j].1).and(&diff.not());
                push(&mut masks, m);
            }
        }
    }

    // Pairwise cross-state combinations with disjoint footprints.
    let snapshot: Vec<(BitString, BitString, usize)> = singles
        .iter()
        .map(|(v, m, s, _)| (v.clone(), m.clone(), *s))
        .collect();
    for i in 0..snapshot.len() {
        for j in (i + 1)..snapshot.len() {
            let (va, ma, sa) = &snapshot[i];
            let (vb, mb, sb) = &snapshot[j];
            if sa == sb || ma.and(mb).count_ones() != 0 {
                continue;
            }
            push(&mut values, va.or(vb));
            push(&mut masks, ma.or(mb));
        }
    }

    // Single-group restrictions of every mask (subranges for key splitting).
    let base_masks = masks.clone();
    for m in &base_masks {
        for g in groups {
            let mut cut = BitString::zeros(canon_width);
            for i in g.offset..g.offset + g.width {
                if m.get(i) {
                    cut.set(i, true);
                }
            }
            if cut.count_ones() != 0 {
                push(&mut masks, cut);
            }
        }
    }

    (values, masks)
}

/// Creates the solver variables for `shape` and asserts the structural /
/// device constraints (φ_tofino or φ_IPU of Figs. 10–11).
#[allow(clippy::needless_range_loop)] // index-driven encodings name terms by (s, j)
pub fn build_vars(smt: &mut Smt, shape: &Shape, device: &DeviceProfile) -> SkelVars {
    let s_count = shape.state_count();
    let n_slots = shape.slots.len();
    let e_per = shape.entries_per_state;
    let kw = shape.canon_width as u32;
    let sbits = shape.state_bits();
    let mut space = 0usize;

    // Allocation variables.
    let mut alloc = Vec::with_capacity(s_count);
    for s in 0..s_count {
        let row: Vec<Term> = (0..shape.groups.len())
            .map(|g| smt.var(&format!("alloc_{s}_{g}"), 1))
            .collect();
        space += row.len();
        alloc.push(row);
    }

    // Key width limit per state: sum of allocated group widths <= keyLimit.
    let sum_bits = bits_for(shape.canon_width.max(1) as u64) + 1;
    for s in 0..s_count {
        let mut sum = smt.const_u64(0, sum_bits);
        for (g, grp) in shape.groups.iter().enumerate() {
            let w = smt.const_u64(grp.width as u64, sum_bits);
            let z = smt.const_u64(0, sum_bits);
            let add = smt.ite(alloc[s][g], w, z);
            sum = smt.add(sum, add);
        }
        let limit = smt.const_u64(device.key_limit.min(shape.canon_width) as u64, sum_bits);
        let ok = smt.ule(sum, limit);
        smt.assert(ok);
    }

    // Entry variables.  Under Opt4 both value and mask come from candidate
    // muxes; otherwise they are free bit-vectors.
    let candidate_mux =
        |smt: &mut Smt, list: &[BitString], name: String, space: &mut usize| -> Term {
            let vb = bits_for(list.len().saturating_sub(1) as u64).max(1);
            let sel = smt.var(&name, vb);
            *space += vb as usize;
            let lim = smt.const_u64(list.len() as u64 - 1, vb);
            let in_range = smt.ule(sel, lim);
            smt.assert(in_range);
            let mut v = smt.const_bits(list[0].clone());
            for (ci, c) in list.iter().enumerate().skip(1) {
                let ci_t = smt.const_u64(ci as u64, vb);
                let is = smt.eq(sel, ci_t);
                let cv = smt.const_bits(c.clone());
                v = smt.ite(is, cv, v);
            }
            v
        };
    let mut entries = Vec::with_capacity(s_count);
    let mut all_actives = Vec::new();
    for s in 0..s_count {
        let mut row = Vec::with_capacity(e_per);
        for j in 0..e_per {
            let active = smt.var(&format!("act_{s}_{j}"), 1);
            space += 1;
            let mask = match shape.mask_candidates.as_ref() {
                Some(list) => candidate_mux(smt, list, format!("msel_{s}_{j}"), &mut space),
                None => {
                    let m = smt.var(&format!("mask_{s}_{j}"), kw);
                    space += kw as usize;
                    m
                }
            };
            let value = match shape.value_candidates.as_ref() {
                Some(list) => candidate_mux(smt, list, format!("vsel_{s}_{j}"), &mut space),
                None => {
                    let v = smt.var(&format!("val_{s}_{j}"), kw);
                    space += kw as usize;
                    // Normalize: value bits under wildcard mask are zero.
                    let vm = smt.and(v, mask);
                    let norm = smt.eq(vm, v);
                    smt.assert(norm);
                    v
                }
            };
            let next = smt.var(&format!("next_{s}_{j}"), sbits);
            space += sbits as usize;

            // Next-state range: 1..=reject, and forward-only when loop-free.
            let one = smt.const_u64(1, sbits);
            let rej = smt.const_u64(shape.reject_code() as u64, sbits);
            let ge1 = smt.ule(one, next);
            let lerej = smt.ule(next, rej);
            let range = smt.and(ge1, lerej);
            let imp = smt.implies(active, range);
            smt.assert(imp);

            // Mask only covers allocated groups.
            for (g, grp) in shape.groups.iter().enumerate() {
                let sub = smt.extract(mask, grp.offset as u32, (grp.offset + grp.width) as u32);
                let z = smt.const_u64(0, grp.width as u32);
                let zero = smt.eq(sub, z);
                let na = smt.not(alloc[s][g]);
                let c = smt.implies(na, zero);
                smt.assert(c);
            }

            all_actives.push(active);
            row.push(EntryTerms {
                active,
                value,
                mask,
                next,
            });
        }
        // Active entries form a prefix.
        for j in 1..e_per {
            let c = smt.implies(row[j].active, row[j - 1].active);
            smt.assert(c);
        }
        entries.push(row);
    }

    // Loop-free ordering: symbolic ranks, strictly increasing along edges.
    if !shape.loopy {
        let rbits = bits_for(s_count as u64).max(1);
        let ranks: Vec<Term> = (0..s_count)
            .map(|s| smt.var(&format!("rank_{s}"), rbits))
            .collect();
        space += s_count * rbits as usize;
        for s in 0..s_count {
            for j in 0..e_per {
                for t in 1..s_count {
                    let tc = smt.const_u64(t as u64, sbits);
                    let goes = smt.eq(entries[s][j].next, tc);
                    let cond = smt.and(entries[s][j].active, goes);
                    let lt = smt.ult(ranks[s], ranks[t]);
                    let c = smt.implies(cond, lt);
                    smt.assert(c);
                }
            }
        }
    }

    // Extraction selectors.
    let ebits = shape.ext_bits();
    let mut ext_sel = Vec::with_capacity(s_count);
    for s in 0..s_count {
        if shape.opt3 {
            // Entry state and spares extract nothing; slot states extract
            // their preallocated field.
            let code = if s >= 1 && s <= n_slots { s as u64 } else { 0 };
            ext_sel.push(smt.const_u64(code, ebits));
        } else if s == 0 {
            ext_sel.push(smt.const_u64(0, ebits));
        } else {
            let v = smt.var(&format!("ext_{s}"), ebits);
            space += ebits as usize;
            let lim = smt.const_u64(n_slots as u64, ebits);
            let ok = smt.ule(v, lim);
            smt.assert(ok);
            ext_sel.push(v);
        }
    }

    // Total active entry count.
    let actives_count = smt.popcount(&all_actives);
    let count_bits = smt.width(actives_count);

    // Device-specific constraints.
    let mut stage = None;
    match device.arch {
        Arch::SingleTable => {
            // tcamLimit bounds the total entry count (Fig. 10).
            let lim = smt.const_u64(device.tcam_limit.min(s_count * e_per) as u64, count_bits);
            let ok = smt.ule(actives_count, lim);
            smt.assert(ok);
        }
        Arch::Pipelined | Arch::Interleaved => {
            // Fig. 11: per-state stage variables; transitions move strictly
            // forward (New2); stages bounded (New1); per-stage entry budget.
            // The stage domain is clamped to the state count — a feasible
            // program never needs more stages than states, and the smaller
            // domain keeps the cardinality constraints cheap.
            let eff_limit = device.stage_limit.min(s_count);
            let stb = bits_for(eff_limit.saturating_sub(1) as u64).max(1);
            let stages: Vec<Term> = (0..s_count)
                .map(|s| smt.var(&format!("stage_{s}"), stb))
                .collect();
            space += s_count * stb as usize;
            for s in 0..s_count {
                let lim = smt.const_u64(eff_limit as u64 - 1, stb);
                let ok = smt.ule(stages[s], lim);
                smt.assert(ok);
                for j in 0..e_per {
                    for t in 1..s_count {
                        let tc = smt.const_u64(t as u64, sbits);
                        let goes = smt.eq(entries[s][j].next, tc);
                        let cond = smt.and(entries[s][j].active, goes);
                        let fwd = smt.ult(stages[s], stages[t]);
                        let c = smt.implies(cond, fwd);
                        smt.assert(c);
                    }
                }
            }
            // Per-stage entry budget.
            for d in 0..eff_limit {
                let dc = smt.const_u64(d as u64, stb);
                let mut in_stage = Vec::new();
                for s in 0..s_count {
                    let here = smt.eq(stages[s], dc);
                    for j in 0..e_per {
                        let both = smt.and(here, entries[s][j].active);
                        in_stage.push(both);
                    }
                }
                let cnt = smt.popcount(&in_stage);
                let w = smt.width(cnt);
                let lim = smt.const_u64(device.tcam_limit.min(in_stage.len()) as u64, w);
                let ok = smt.ule(cnt, lim);
                smt.assert(ok);
            }
            stage = Some(stages);
        }
    }

    SkelVars {
        terms: SkelTerms {
            alloc,
            entries,
            ext_sel,
        },
        stage,
        active_count: actives_count,
        count_bits,
        search_space_bits: space,
    }
}

/// A model of the skeleton: every decision resolved to a constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcreteSkel {
    /// `alloc[s][g]`.
    pub alloc: Vec<Vec<bool>>,
    /// Active entries per state, priority order.
    pub entries: Vec<Vec<ConcreteEntry>>,
    /// Extraction slot index per state (0 = none).
    pub ext: Vec<usize>,
    /// Stage per state (all zero for single-table devices).
    pub stage: Vec<usize>,
}

/// One resolved TCAM entry (canonical layout).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcreteEntry {
    /// Canonical value.
    pub value: BitString,
    /// Canonical mask.
    pub mask: BitString,
    /// Next-state code.
    pub next: usize,
}

/// Reads a [`ConcreteSkel`] out of the synthesis solver's model.
pub fn extract_model(smt: &mut Smt, shape: &Shape, vars: &SkelVars) -> ConcreteSkel {
    let s_count = shape.state_count();
    let mut alloc = Vec::with_capacity(s_count);
    let mut entries = Vec::with_capacity(s_count);
    let mut ext = Vec::with_capacity(s_count);
    let mut stage = Vec::with_capacity(s_count);
    for s in 0..s_count {
        alloc.push(
            (0..shape.groups.len())
                .map(|g| smt.model_bool(vars.terms.alloc[s][g]))
                .collect::<Vec<bool>>(),
        );
        let mut row = Vec::new();
        for e in &vars.terms.entries[s] {
            if !smt.model_bool(e.active) {
                break; // actives are a prefix
            }
            row.push(ConcreteEntry {
                value: smt.model_value(e.value),
                mask: smt.model_value(e.mask),
                next: smt.model_u64(e.next) as usize,
            });
        }
        entries.push(row);
        ext.push(smt.model_u64(vars.terms.ext_sel[s]) as usize);
        stage.push(match &vars.stage {
            Some(sv) => smt.model_u64(sv[s]) as usize,
            None => 0,
        });
    }
    ConcreteSkel {
        alloc,
        entries,
        ext,
        stage,
    }
}

/// Creates *free* (unconstrained) skeleton variables for the persistent
/// incremental verifier: the same term layout as [`build_vars`] produces,
/// but with no structural or device constraints asserted.  Each candidate
/// is pinned to these variables with the equality assumptions from
/// [`pin_candidate`], so one solver instance serves every verification
/// query of a synthesis run.
pub fn build_verifier_terms(smt: &mut Smt, shape: &Shape) -> SkelTerms {
    let s_count = shape.state_count();
    let e_per = shape.entries_per_state;
    let kw = shape.canon_width as u32;
    let sbits = shape.state_bits();
    let ebits = shape.ext_bits();
    let mut alloc = Vec::with_capacity(s_count);
    let mut entries = Vec::with_capacity(s_count);
    let mut ext_sel = Vec::with_capacity(s_count);
    for s in 0..s_count {
        alloc.push(
            (0..shape.groups.len())
                .map(|g| smt.var(&format!("v_alloc_{s}_{g}"), 1))
                .collect::<Vec<Term>>(),
        );
        let row = (0..e_per)
            .map(|j| EntryTerms {
                active: smt.var(&format!("v_act_{s}_{j}"), 1),
                value: smt.var(&format!("v_val_{s}_{j}"), kw),
                mask: smt.var(&format!("v_mask_{s}_{j}"), kw),
                next: smt.var(&format!("v_next_{s}_{j}"), sbits),
            })
            .collect::<Vec<EntryTerms>>();
        entries.push(row);
        ext_sel.push(smt.var(&format!("v_ext_{s}"), ebits));
    }
    SkelTerms {
        alloc,
        entries,
        ext_sel,
    }
}

/// Equality assumptions pinning [`build_verifier_terms`] variables to a
/// concrete candidate.  Entries beyond the candidate's active prefix are
/// pinned inactive only — their value/mask/next stay unconstrained, which
/// is sound because the simulation encoding gates all matching on
/// `active`.  Stages are not pinned: they never enter the simulation
/// semantics.
pub fn pin_candidate(
    smt: &mut Smt,
    shape: &Shape,
    terms: &SkelTerms,
    conc: &ConcreteSkel,
) -> Vec<Term> {
    let sbits = shape.state_bits();
    let ebits = shape.ext_bits();
    let mut pins = Vec::new();
    for s in 0..shape.state_count() {
        for (g, &b) in conc.alloc[s].iter().enumerate() {
            let c = smt.const_u64(b as u64, 1);
            pins.push(smt.eq(terms.alloc[s][g], c));
        }
        for (j, et) in terms.entries[s].iter().enumerate() {
            match conc.entries[s].get(j) {
                Some(e) => {
                    let one = smt.const_u64(1, 1);
                    pins.push(smt.eq(et.active, one));
                    let v = smt.const_bits(e.value.clone());
                    pins.push(smt.eq(et.value, v));
                    let m = smt.const_bits(e.mask.clone());
                    pins.push(smt.eq(et.mask, m));
                    let n = smt.const_u64(e.next as u64, sbits);
                    pins.push(smt.eq(et.next, n));
                }
                None => {
                    let zero = smt.const_u64(0, 1);
                    pins.push(smt.eq(et.active, zero));
                }
            }
        }
        let e = smt.const_u64(conc.ext[s] as u64, ebits);
        pins.push(smt.eq(terms.ext_sel[s], e));
    }
    pins
}

/// Re-encodes a concrete skeleton as constant terms (for the fresh-solver
/// verification path kept for differential testing and benchmarking).
pub fn concrete_terms(smt: &mut Smt, shape: &Shape, conc: &ConcreteSkel) -> SkelTerms {
    let sbits = shape.state_bits();
    let ebits = shape.ext_bits();
    let mut alloc = Vec::new();
    let mut entries = Vec::new();
    let mut ext_sel = Vec::new();
    for s in 0..shape.state_count() {
        alloc.push(
            conc.alloc[s]
                .iter()
                .map(|&b| smt.const_u64(b as u64, 1))
                .collect::<Vec<Term>>(),
        );
        let mut row = Vec::new();
        for e in &conc.entries[s] {
            row.push(EntryTerms {
                active: smt.const_u64(1, 1),
                value: smt.const_bits(e.value.clone()),
                mask: smt.const_bits(e.mask.clone()),
                next: smt.const_u64(e.next as u64, sbits),
            });
        }
        entries.push(row);
        ext_sel.push(smt.const_u64(conc.ext[s] as u64, ebits));
    }
    SkelTerms {
        alloc,
        entries,
        ext_sel,
    }
}

/// Total active entries in a concrete skeleton.
pub fn entry_count(conc: &ConcreteSkel) -> usize {
    conc.entries.iter().map(Vec::len).sum()
}

/// Stages used by a concrete skeleton (max + 1 over reachable states).
pub fn stages_used(conc: &ConcreteSkel) -> usize {
    conc.stage.iter().copied().max().unwrap_or(0) + 1
}

/// Converts a concrete skeleton into a [`TcamProgram`] over the *original*
/// field table (widths/varbit restored by construction — entries reference
/// field ids only).
pub fn to_program(shape: &Shape, conc: &ConcreteSkel, device: &DeviceProfile) -> TcamProgram {
    let s_count = shape.state_count();
    let acc = shape.accept_code();
    let rej = shape.reject_code();

    let mut states = Vec::with_capacity(s_count);
    for s in 0..s_count {
        // Key parts: allocated groups in canonical order.
        let mut key = Vec::new();
        let mut ranges = Vec::new(); // canonical ranges kept
        for (g, grp) in shape.groups.iter().enumerate() {
            if conc.alloc[s][g] {
                key.push(match grp.source {
                    GroupSource::Slice { field, start, end } => {
                        KeyPart::Slice { field, start, end }
                    }
                    GroupSource::Lookahead { start, end } => KeyPart::Lookahead { start, end },
                });
                ranges.push((grp.offset, grp.offset + grp.width));
            }
        }
        let project = |b: &BitString| {
            let mut out = BitString::empty();
            for &(lo, hi) in &ranges {
                out = out.concat(&b.slice(lo, hi));
            }
            out
        };
        let entries = conc.entries[s]
            .iter()
            .map(|e| {
                let next = if e.next == acc {
                    HwNext::Accept
                } else if e.next >= rej {
                    HwNext::Reject
                } else {
                    HwNext::State(HwStateId(e.next))
                };
                let extracts = match e.next {
                    t if t >= 1 && t <= shape.slots.len() && conc.ext[t] != 0 => {
                        shape.slots[conc.ext[t] - 1].clone()
                    }
                    _ => Vec::new(),
                };
                HwEntry {
                    pattern: ph_bits::Ternary::new(project(&e.value), project(&e.mask)),
                    extracts,
                    next,
                }
            })
            .collect();
        let name = if s == 0 {
            "entry".to_string()
        } else if s <= shape.slots.len() {
            format!("slot{}", s)
        } else {
            format!("spare{}", s - shape.slots.len())
        };
        states.push(HwState {
            name,
            stage: conc.stage[s],
            key,
            entries,
        });
    }
    TcamProgram {
        device: device.clone(),
        states,
        start: HwStateId(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::reduce_spec;
    use ph_p4f::parse_parser;

    fn eth_spec() -> ParserSpec {
        parse_parser(
            r#"
            header e_t { pad : 8; ty : 4; }
            header a_t { v : 4; }
            parser {
                state start {
                    extract(e_t);
                    transition select(e_t.ty) {
                        7 : pa;
                        default : accept;
                    }
                }
                state pa { extract(a_t); transition accept; }
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn shape_counts() {
        let red = reduce_spec(&eth_spec(), OptConfig::all()).unwrap();
        let shape = build_shape(
            &red,
            &DeviceProfile::tofino(),
            OptConfig::all(),
            false,
            None,
        )
        .unwrap();
        // Slots: the [pad, ty] run (split after the keyed ty) and [a.v].
        assert_eq!(shape.slots.len(), 2);
        assert_eq!(shape.slots[0].len(), 2);
        assert_eq!(shape.state_count(), 3);
        assert_eq!(shape.groups.len(), 1); // only ty's 4 bits are keyed
        assert_eq!(shape.canon_width, 4);
        assert!(shape.opt3);
        // Candidates: zero + the single spec value 7.
        let cands = shape.value_candidates.as_ref().unwrap();
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[1].to_u64(), 7);
    }

    #[test]
    fn naive_shape_is_much_bigger() {
        let red_all = reduce_spec(&eth_spec(), OptConfig::all()).unwrap();
        let red_none = reduce_spec(&eth_spec(), OptConfig::none()).unwrap();
        let dev = DeviceProfile::tofino();
        let s1 = build_shape(&red_all, &dev, OptConfig::all(), false, None).unwrap();
        let s0 = build_shape(&red_none, &dev, OptConfig::none(), false, None).unwrap();
        assert!(s0.groups.len() > s1.groups.len());
        assert!(s0.value_candidates.is_none());

        let mut smt1 = Smt::new();
        let v1 = build_vars(&mut smt1, &s1, &dev);
        let mut smt0 = Smt::new();
        let v0 = build_vars(&mut smt0, &s0, &dev);
        assert!(
            v0.search_space_bits > 2 * v1.search_space_bits,
            "naive {} vs opt {}",
            v0.search_space_bits,
            v1.search_space_bits
        );
    }

    #[test]
    fn vars_are_satisfiable() {
        let red = reduce_spec(&eth_spec(), OptConfig::all()).unwrap();
        for dev in [DeviceProfile::tofino(), DeviceProfile::ipu()] {
            let shape = build_shape(&red, &dev, OptConfig::all(), false, None).unwrap();
            let mut smt = Smt::new();
            let vars = build_vars(&mut smt, &shape, &dev);
            assert!(
                smt.check().is_sat(),
                "structural constraints unsat for {}",
                dev.name
            );
            let conc = extract_model(&mut smt, &shape, &vars);
            assert_eq!(conc.entries.len(), shape.state_count());
        }
    }

    #[test]
    fn model_roundtrip_to_program() {
        let red = reduce_spec(&eth_spec(), OptConfig::all()).unwrap();
        let dev = DeviceProfile::tofino();
        let shape = build_shape(&red, &dev, OptConfig::all(), false, None).unwrap();
        let mut smt = Smt::new();
        let vars = build_vars(&mut smt, &shape, &dev);
        // Force one entry active in the entry state with next = slot 1.
        let one = smt.const_u64(1, 1);
        let act = smt.eq(vars.terms.entries[0][0].active, one);
        smt.assert(act);
        let sb = shape.state_bits();
        let t1 = smt.const_u64(1, sb);
        let nx = smt.eq(vars.terms.entries[0][0].next, t1);
        smt.assert(nx);
        assert!(smt.check().is_sat());
        let conc = extract_model(&mut smt, &shape, &vars);
        let prog = to_program(&shape, &conc, &dev);
        assert_eq!(prog.states.len(), 3);
        assert_eq!(prog.states[0].entries[0].next, HwNext::State(HwStateId(1)));
        // Entry into slot 1 extracts the slot's field.
        assert_eq!(prog.states[0].entries[0].extracts, shape.slots[0]);
    }

    #[test]
    fn loopy_shape_dedups_slots() {
        let spec = parse_parser(
            r#"
            header m_t { bos : 1; label : 3; }
            parser {
                state start {
                    extract(m_t);
                    transition select(m_t.bos) {
                        0 : start;
                        default : accept;
                    }
                }
            }
            "#,
        )
        .unwrap();
        let red = reduce_spec(&spec, OptConfig::all()).unwrap();
        let shape =
            build_shape(&red, &DeviceProfile::tofino(), OptConfig::all(), true, None).unwrap();
        assert_eq!(shape.slots.len(), 2); // bos + label once
        assert!(shape.loopy);
    }

    #[test]
    fn spares_added_for_wide_keys() {
        let spec = parse_parser(
            r#"
            header w_t { k : 16; }
            parser {
                state start {
                    extract(w_t);
                    transition select(w_t.k) {
                        0x1234 : accept;
                        default : reject;
                    }
                }
            }
            "#,
        )
        .unwrap();
        let red = reduce_spec(&spec, OptConfig::all()).unwrap();
        let dev = DeviceProfile::parameterized(8, 32, 128);
        let shape = build_shape(&red, &dev, OptConfig::all(), false, None).unwrap();
        assert_eq!(shape.spares, 1);
        let dev4 = DeviceProfile::parameterized(4, 32, 128);
        let shape4 = build_shape(&red, &dev4, OptConfig::all(), false, None).unwrap();
        assert_eq!(shape4.spares, 3);
    }
}
