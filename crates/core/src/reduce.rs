//! Input-space reduction: Opt2 (bit-width minimization) and Opt6 (fixed-size
//! varbit treatment).
//!
//! Both transforms keep the *field table shape* — same number of fields,
//! same ids — so a program synthesized against the reduced spec can be
//! emitted against the original field table unchanged: the hardware machine
//! then extracts original widths (and true varbit lengths) automatically.
//! What shrinks is only the synthesis-internal semantics: test cases,
//! verification inputs and dictionary comparisons all live in the reduced
//! space.  Opt2's soundness argument is that irrelevant fields contribute
//! no key bits, so control flow cannot depend on their content; Opt6's is
//! §6.6: which state extracts a varbit field is independent of its runtime
//! size.

use crate::OptConfig;
use ph_ir::{analysis, FieldKind, ParserSpec};

/// Width given to varbit fields during synthesis under Opt6.  Any positive
/// value works (placement is size-independent); small keeps the
/// verification bitstream short.
pub const VARBIT_SYNTH_WIDTH: usize = 4;

/// The reduced specification plus bookkeeping.
#[derive(Clone, Debug)]
pub struct Reduced {
    /// The reduced spec (same field ids as the original).
    pub spec: ParserSpec,
    /// Which fields were shrunk by Opt2.
    pub shrunk: Vec<bool>,
}

/// Applies Opt2/Opt6 according to `opts`.
///
/// # Errors
///
/// Returns a message when the spec keys on a varbit field (unsupported: a
/// runtime-sized field cannot feed a fixed transition key).
pub fn reduce_spec(spec: &ParserSpec, opts: OptConfig) -> Result<Reduced, String> {
    let used = analysis::key_bits_used(spec);
    for (fi, f) in spec.fields.iter().enumerate() {
        if matches!(f.kind, FieldKind::Var(_)) && !used[fi].is_empty() {
            return Err(format!(
                "field {} is varbit but used in a transition key",
                f.name
            ));
        }
    }

    let mut out = spec.clone();
    let mut shrunk = vec![false; spec.fields.len()];

    if opts.opt6_fixed_varbit {
        for f in out.fields.iter_mut() {
            if matches!(f.kind, FieldKind::Var(_)) {
                f.kind = FieldKind::Fixed;
                f.width = f.width.min(VARBIT_SYNTH_WIDTH);
            }
        }
    }

    if opts.opt2_bitwidth {
        let irrelevant = analysis::irrelevant_fields(&out);
        for (fi, f) in out.fields.iter_mut().enumerate() {
            if irrelevant[fi] && f.width > 1 {
                f.width = 1;
                shrunk[fi] = true;
            }
        }
    }

    out.validate()
        .map_err(|e| format!("reduced spec invalid: {e}"))?;
    Ok(Reduced { spec: out, shrunk })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_ir::{Field, FieldId, KeyPart, NextState, State, StateId, Transition, VarLen};

    fn spec_with_varbit(keyed_on_varbit: bool) -> ParserSpec {
        ParserSpec {
            fields: vec![
                Field::fixed("ctl", 4),
                Field {
                    name: "opts".into(),
                    width: 64,
                    kind: FieldKind::Var(VarLen {
                        control: FieldId(0),
                        multiplier: 8,
                        offset: 0,
                    }),
                },
                Field::fixed("pad", 32),
            ],
            states: vec![State {
                name: "start".into(),
                extracts: vec![FieldId(0), FieldId(1), FieldId(2)],
                key: vec![if keyed_on_varbit {
                    KeyPart::Slice {
                        field: FieldId(1),
                        start: 0,
                        end: 2,
                    }
                } else {
                    KeyPart::Slice {
                        field: FieldId(0),
                        start: 0,
                        end: 2,
                    }
                }],
                transitions: vec![Transition {
                    pattern: ph_bits::Ternary::parse("11").unwrap(),
                    next: NextState::Reject,
                }],
                default: NextState::Accept,
            }],
            start: StateId(0),
        }
    }

    #[test]
    fn varbit_becomes_fixed_and_small() {
        let r = reduce_spec(&spec_with_varbit(false), OptConfig::all()).unwrap();
        assert_eq!(r.spec.fields[1].kind, FieldKind::Fixed);
        assert!(r.spec.fields[1].width <= VARBIT_SYNTH_WIDTH);
    }

    #[test]
    fn irrelevant_fields_shrink_to_one_bit() {
        let r = reduce_spec(&spec_with_varbit(false), OptConfig::all()).unwrap();
        assert_eq!(r.spec.fields[2].width, 1); // pad never keyed
        assert!(r.shrunk[2]);
        assert_eq!(r.spec.fields[0].width, 4); // ctl keyed, keeps width
        assert!(!r.shrunk[0]);
    }

    #[test]
    fn opt2_off_keeps_widths() {
        let mut opts = OptConfig::all();
        opts.opt2_bitwidth = false;
        let r = reduce_spec(&spec_with_varbit(false), opts).unwrap();
        assert_eq!(r.spec.fields[2].width, 32);
    }

    #[test]
    fn keyed_varbit_rejected() {
        assert!(reduce_spec(&spec_with_varbit(true), OptConfig::all()).is_err());
    }
}
