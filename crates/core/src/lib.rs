//! # ph-core
//!
//! The ParserHawk synthesis engine (§5–§6 of the paper): a CEGIS
//! (counterexample-guided inductive synthesis) compiler from parser
//! specifications to TCAM programs for heterogeneous devices.
//!
//! Pipeline (Fig. 8):
//!
//! 1. **Code analyzer / reducer** ([`reduce`]) — applies Opt2 (bit-width
//!    minimization of irrelevant fields) and Opt6 (varbit fields treated as
//!    fixed-size) to shrink the input space.
//! 2. **Skeleton** ([`skeleton`]) — a parameterized TCAM-machine template:
//!    one hardware state per extracted field (Opt3 preallocation) plus spare
//!    key-checking states, per-state key-source allocation variables over
//!    spec-derived bit groups (Opt1 + Opt5), and per-entry value/mask/next
//!    symbols with value selection restricted to spec constants and their
//!    combinations/subranges (Opt4).  Device constraints (φ_tofino /
//!    φ_IPU of Figs. 10–11) are asserted structurally.
//! 3. **CEGIS loop** ([`cegis`]) — synthesis over accumulated test cases in
//!    one incremental solver, symbolic verification against the enumerated
//!    spec paths (φ_spec, Fig. 12), counterexamples feeding back, and an
//!    outer descent on the resource budget (TCAM entries for Tofino, stages
//!    for the IPU).
//! 4. **Post-synthesis optimizer** ([`post`]) — §5.3: chain-state merging
//!    and extraction splitting; varbit/width restoration is automatic
//!    because emitted programs reference the original field table.
//! 5. **Validation** ([`validate`]) — the Fig. 22 simulator check on random
//!    and boundary inputs against the *original* specification.
//!
//! Opt7 (parallel racing of loop-aware/loop-free skeletons and budget
//! subproblems) lives in [`parallel`].

pub mod bounds;
pub mod cegis;
pub mod encode;
pub mod fuzz;
pub mod parallel;
pub mod post;
pub mod reduce;
pub mod skeleton;
pub mod specenc;
pub mod validate;

use ph_hw::{DeviceProfile, TcamProgram};
use ph_ir::ParserSpec;
use ph_obs::Json;
use ph_sat::SolverStats;
use std::fmt;
use std::time::Duration;

/// Which optimizations are enabled (§6).  Each flag is honest: disabling it
/// genuinely enlarges the encoding, which is how the Table 3 `Orig` column
/// and the Table 5 ablations are measured.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OptConfig {
    /// Opt1: restrict key-source bits to those used in the spec.
    pub opt1_spec_keys: bool,
    /// Opt2: shrink irrelevant fields to one bit during synthesis.
    pub opt2_bitwidth: bool,
    /// Opt3: preallocate one extracted field per hardware state.
    pub opt3_prealloc: bool,
    /// Opt4: restrict entry values to spec constants (+ concatenations and
    /// hardware-width subranges).
    pub opt4_constants: bool,
    /// Opt5: allocate contiguous field bits as indivisible groups.
    pub opt5_grouping: bool,
    /// Opt6: treat varbit fields as fixed-size during synthesis.
    pub opt6_fixed_varbit: bool,
    /// Opt7: race loop-aware and loop-free skeletons in parallel.
    pub opt7_parallel: bool,
    /// Portfolio SAT solving: race diversified solver workers on hard
    /// CEGIS queries and import the winner's learned clauses (see
    /// [`ph_sat::Solver::solve_portfolio`]).
    pub portfolio: bool,
    /// Batched CEGIS: harvest several diverse candidates per synth solver
    /// call (via scoped model-blocking clauses), verify them concurrently,
    /// and feed every distinct counterexample back at once.  Width comes
    /// from [`SynthParams::batch_width`] (auto on `None`, clamped to
    /// sequential on 1 core); `PH_BATCH` in the environment overrides both.
    pub batch: bool,
}

impl OptConfig {
    /// All optimizations on (the paper's default).
    pub fn all() -> OptConfig {
        OptConfig {
            opt1_spec_keys: true,
            opt2_bitwidth: true,
            opt3_prealloc: true,
            opt4_constants: true,
            opt5_grouping: true,
            opt6_fixed_varbit: true,
            opt7_parallel: true,
            portfolio: true,
            batch: true,
        }
    }

    /// All optimizations off — the naive "Orig" encoding of Table 3.
    /// (Opt6 stays on because varbit handling without it is undefined; the
    /// paper's baseline does the same for benchmarks that need it.)
    pub fn none() -> OptConfig {
        OptConfig {
            opt1_spec_keys: false,
            opt2_bitwidth: false,
            opt3_prealloc: false,
            opt4_constants: false,
            opt5_grouping: false,
            opt6_fixed_varbit: true,
            opt7_parallel: false,
            portfolio: false,
            batch: false,
        }
    }

    /// The Table 5 "Other OPT" configuration: everything but Opt4 and Opt5.
    pub fn without_opt45() -> OptConfig {
        OptConfig {
            opt4_constants: false,
            opt5_grouping: false,
            ..OptConfig::all()
        }
    }

    /// The Table 5 "+OPT5" configuration: everything but Opt4.
    pub fn without_opt4() -> OptConfig {
        OptConfig {
            opt4_constants: false,
            ..OptConfig::all()
        }
    }
}

/// A pluggable synthesis-result cache (implemented by `ph-svc`'s
/// content-addressed disk store; `ph-core` only defines the hook so the
/// dependency points outward).
///
/// [`Synthesizer::synthesize`] consults the cache after spec validation
/// and before any solver work; on a miss it stores successful outputs.
/// Implementations derive their own keys from the full
/// `(spec, device, opts, params)` context and MUST return outputs that
/// are byte-identical to what a fresh run would have produced for the
/// *same* spec instance (field ids in the returned program index the
/// querying spec's field table).
pub trait SynthCache: Send + Sync {
    /// Returns the cached output for this synthesis context, or `None`.
    fn lookup(
        &self,
        spec: &ParserSpec,
        device: &DeviceProfile,
        opts: OptConfig,
        params: &SynthParams,
    ) -> Option<SynthOutput>;

    /// Records a freshly synthesized output.  Failures are the
    /// implementation's to swallow — a broken cache must never fail a
    /// synthesis run that already succeeded.
    fn store(
        &self,
        spec: &ParserSpec,
        device: &DeviceProfile,
        opts: OptConfig,
        params: &SynthParams,
        out: &SynthOutput,
    );
}

/// A cloneable [`SynthCache`] handle for [`SynthParams::cache`].
#[derive(Clone)]
pub struct CacheHook(pub std::sync::Arc<dyn SynthCache>);

impl fmt::Debug for CacheHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CacheHook(..)")
    }
}

/// Knobs of a synthesis run.
#[derive(Clone, Debug)]
pub struct SynthParams {
    /// Wall-clock budget; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Cap on CEGIS iterations per budget level.
    pub max_cegis_iters: usize,
    /// Cap on loop unrolling for loopy specifications.
    pub max_loop_iters: usize,
    /// Extra no-extraction states available for key splitting.
    pub spare_states: Option<usize>,
    /// Random seed for initial test-case generation.
    pub seed: u64,
    /// Run CNF simplification (preprocessing + inprocessing) in the SAT
    /// engines.  Defaults to on; the `PH_NO_SIMPLIFY` environment variable
    /// force-disables it regardless of this flag.
    pub simplify: bool,
    /// Run-scoped tracer.  `Some` installs the tracer as the thread tracer
    /// for the run's duration (Opt7 race branches derive per-branch
    /// streams from it); `None` inherits the ambient [`ph_obs::current`]
    /// tracer, which defaults to the `PH_TRACE` environment configuration.
    pub tracer: Option<ph_obs::Tracer>,
    /// Portfolio width for hard SAT queries when [`OptConfig::portfolio`]
    /// is on.  `None` (the default) divides the available cores by the
    /// number of active Opt7 race branches; `Some(w)` forces width `w`.
    /// Ignored (sequential) when the opt flag is off; `PH_PORTFOLIO` in
    /// the environment overrides both.
    pub portfolio_width: Option<usize>,
    /// Testing hook: pretend the machine has this many cores for the
    /// portfolio's single-core clamp and auto-width computation (the batch
    /// width auto-computation and clamp use the same value).
    pub portfolio_cores: Option<usize>,
    /// Candidate batch width for batched CEGIS when [`OptConfig::batch`]
    /// is on.  `None` (the default) picks `min(cores, 4)`, clamping to 1
    /// (the exact sequential loop) on a single core; `Some(k)` forces
    /// width `k` regardless of core count.  Ignored (sequential) when the
    /// opt flag is off; `PH_BATCH` in the environment overrides both
    /// (`PH_BATCH=0` is the kill switch).
    pub batch_width: Option<usize>,
    /// Packet budget for the post-verification differential fuzzing gate
    /// ([`fuzz::check_e2e`]).  `0` (the default) disables the gate; the
    /// Fig. 22 random check in [`validate`] always runs.
    pub e2e_samples: usize,
    /// Synthesis-result cache.  `Some` makes [`Synthesizer::synthesize`]
    /// consult the cache before solving and store successful outputs
    /// after; `None` (the default) always synthesizes from scratch.
    /// `ph-svc` provides the content-addressed disk implementation and a
    /// `PH_CACHE_DIR` environment constructor.
    pub cache: Option<CacheHook>,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            timeout: Some(Duration::from_secs(120)),
            max_cegis_iters: 160,
            max_loop_iters: 8,
            spare_states: None,
            seed: 0x9aa5,
            simplify: true,
            tracer: None,
            portfolio_width: None,
            portfolio_cores: None,
            batch_width: None,
            e2e_samples: 0,
            cache: None,
        }
    }
}

/// Per-run latency histograms (log-bucketed, mergeable;
/// [`ph_obs::Histogram`]).  Recorded unconditionally — they are a few
/// bucket increments per solver query — so untraced benchmark runs
/// still export tail latencies (p50/p90/p99) in `results/table*.json`.
#[derive(Clone, Debug, Default)]
pub struct RunHists {
    /// Synthesis-phase solver query durations, in nanoseconds.
    pub synth_query_ns: ph_obs::Histogram,
    /// Verification query durations (candidate checks), in nanoseconds.
    pub verify_query_ns: ph_obs::Histogram,
    /// Mask-shrinking trial durations, in nanoseconds.
    pub shrink_query_ns: ph_obs::Histogram,
    /// CDCL conflicts per verification query — the distribution behind
    /// [`SynthStats::max_verify_conflicts`].
    pub verify_conflicts: ph_obs::Histogram,
}

impl RunHists {
    /// Folds another set of histograms into this one (bucket-wise sums).
    /// Batched CEGIS verifies candidates on worker threads that record
    /// into thread-local hists and merge them back, so per-candidate
    /// latencies keep feeding the p99s.
    pub fn merge(&mut self, other: &RunHists) {
        self.synth_query_ns.merge(&other.synth_query_ns);
        self.verify_query_ns.merge(&other.verify_query_ns);
        self.shrink_query_ns.merge(&other.shrink_query_ns);
        self.verify_conflicts.merge(&other.verify_conflicts);
    }

    /// The histograms as a JSON object of summaries
    /// (`{count,min,max,mean,p50,p90,p99}` each).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("synth_query_ns", self.synth_query_ns.summary_json())
            .with("verify_query_ns", self.verify_query_ns.summary_json())
            .with("shrink_query_ns", self.shrink_query_ns.summary_json())
            .with("verify_conflicts", self.verify_conflicts.summary_json())
    }
}

/// Statistics of a synthesis run (the Table 3 columns).
#[derive(Clone, Debug, Default)]
pub struct SynthStats {
    /// Total width in bits of the skeleton's decision variables — the
    /// "Search Space (bits)" column.
    pub search_space_bits: usize,
    /// CEGIS iterations across all budget levels.
    pub cegis_iterations: usize,
    /// Test cases accumulated.
    pub test_cases: usize,
    /// Counterexamples returned by verification.  Every failing candidate
    /// counts here; duplicates within a batch are dropped before encoding
    /// (see [`SynthStats::cex_dup_dropped`]), so
    /// [`SynthStats::test_cases`] grows by the distinct ones only.
    pub counterexamples: usize,
    /// Budget levels explored during minimization.
    pub budget_levels: usize,
    /// Verification solver instances constructed.  With the incremental
    /// engine this is exactly 1 per synthesis run (it was one per candidate
    /// plus one per `shrink_masks` trial before).
    pub verify_solver_builds: usize,
    /// Verification queries issued (candidate checks + mask-shrink trials).
    pub verify_checks: usize,
    /// Mask-shrinking trials attempted after the descent.
    pub shrink_trials: usize,
    /// Mask-shrinking trials that verified and were kept.
    pub shrink_accepted: usize,
    /// Wall-clock time inside synthesis-phase solver checks.
    pub synth_time: Duration,
    /// Wall-clock time inside verification (encoding + candidate queries;
    /// mask-shrinking queries are accounted under
    /// [`SynthStats::shrink_time`]).
    pub verify_time: Duration,
    /// Wall-clock time inside the mask-shrinking pass.
    pub shrink_time: Duration,
    /// Wall-clock time spent.
    pub wall: Duration,
    /// CDCL effort of the synthesis-phase solver (cumulative totals; the
    /// per-query deltas stream out as `smt.*` / `verify.*` trace counters).
    pub synth_sat: SolverStats,
    /// CDCL effort of the persistent verification solver.
    pub verify_sat: SolverStats,
    /// The most conflicts any single verification query needed — the
    /// worst-case incremental `check_assuming` cost.
    pub max_verify_conflicts: u64,
    /// Portfolio races run across both SAT engines (hard queries escalated
    /// to diversified parallel workers).
    pub portfolio_races: u64,
    /// Learned clauses imported back from winning portfolio workers.
    pub portfolio_clauses_imported: u64,
    /// Synth-phase Sat results that opened a candidate-harvest round
    /// (batched CEGIS with effective width >= 2; 0 when sequential).
    pub batch_rounds: u64,
    /// Candidates harvested across all batch rounds, counting the round's
    /// first model — so a round that finds no diverse sibling adds 1.
    pub batch_candidates: u64,
    /// Counterexamples contributed by harvested (non-first) candidates —
    /// the extra information per synth solver call that batching buys.
    pub batch_cex_harvested: u64,
    /// Counterexamples dropped as duplicates of an already-encoded test
    /// case before reaching the synth solver.
    pub cex_dup_dropped: u64,
    /// 1 when this output was served from the synthesis-result cache
    /// ([`SynthParams::cache`]); the other counters then describe the
    /// *original* run that populated the entry.
    pub cache_hits: u64,
    /// 1 when a configured cache was consulted and missed (0 when no
    /// cache was configured at all).
    pub cache_misses: u64,
    /// Per-query latency and conflict distributions.
    pub hists: RunHists,
}

/// [`SolverStats`] as a JSON object.
fn solver_stats_json(s: &SolverStats) -> Json {
    Json::obj()
        .with("conflicts", s.conflicts)
        .with("decisions", s.decisions)
        .with("propagations", s.propagations)
        .with("restarts", s.restarts)
        .with("learnts", s.learnts)
        .with("clauses_added", s.clauses_added)
        .with("eliminated_vars", s.eliminated_vars)
        .with("subsumed_clauses", s.subsumed_clauses)
        .with("strengthened_clauses", s.strengthened_clauses)
        .with("failed_literals", s.failed_literals)
        .with("simplify_time_ns", s.simplify_time_ns)
        .with("portfolio_solves", s.portfolio_solves)
        .with("portfolio_imported", s.portfolio_imported)
        .with("arena_gcs", s.arena_gcs)
        .with("arena_bytes", s.arena_bytes)
}

impl SynthStats {
    /// The run statistics as a JSON object — the per-spec payload of the
    /// machine-readable benchmark results (`results/table*.json`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("search_space_bits", self.search_space_bits)
            .with("cegis_iterations", self.cegis_iterations)
            .with("test_cases", self.test_cases)
            .with("counterexamples", self.counterexamples)
            .with("budget_levels", self.budget_levels)
            .with("verify_solver_builds", self.verify_solver_builds)
            .with("verify_checks", self.verify_checks)
            .with("shrink_trials", self.shrink_trials)
            .with("shrink_accepted", self.shrink_accepted)
            .with("synth_time_s", self.synth_time.as_secs_f64())
            .with("verify_time_s", self.verify_time.as_secs_f64())
            .with("shrink_time_s", self.shrink_time.as_secs_f64())
            .with("wall_s", self.wall.as_secs_f64())
            .with("synth_sat", solver_stats_json(&self.synth_sat))
            .with("verify_sat", solver_stats_json(&self.verify_sat))
            .with("max_verify_conflicts", self.max_verify_conflicts)
            .with("portfolio_races", self.portfolio_races)
            .with(
                "portfolio_clauses_imported",
                self.portfolio_clauses_imported,
            )
            .with("batch_rounds", self.batch_rounds)
            .with("batch_candidates", self.batch_candidates)
            .with("batch_cex_harvested", self.batch_cex_harvested)
            .with("cex_dup_dropped", self.cex_dup_dropped)
            .with("cache_hits", self.cache_hits)
            .with("cache_misses", self.cache_misses)
            .with("hists", self.hists.to_json())
    }
}

/// A successful synthesis result.
#[derive(Clone, Debug)]
pub struct SynthOutput {
    /// The compiled, validated program.
    pub program: TcamProgram,
    /// Run statistics.
    pub stats: SynthStats,
}

/// Why synthesis failed.
#[derive(Clone, Debug)]
pub enum SynthError {
    /// No implementation exists within the device's resources.
    Infeasible(String),
    /// The wall-clock budget expired before a verdict.  Boxed: a
    /// [`SynthStats`] (two embedded [`SolverStats`]) would otherwise
    /// dominate every `Result`'s size.
    Timeout(Box<SynthStats>),
    /// The specification uses a feature outside the supported fragment.
    Unsupported(String),
    /// The synthesized program failed final validation (an engine bug —
    /// surfaced rather than silently returned).
    ValidationFailed(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Infeasible(m) => write!(f, "infeasible: {m}"),
            SynthError::Timeout(s) => write!(f, "timeout after {:?}", s.wall),
            SynthError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SynthError::ValidationFailed(m) => write!(f, "validation failed: {m}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// The top-level compiler: device profile + optimization configuration.
///
/// ```
/// use ph_core::{Synthesizer, OptConfig};
/// use ph_hw::DeviceProfile;
///
/// let spec = ph_p4f::parse_parser(r#"
///     header h_t { v : 4; }
///     parser {
///         state start {
///             extract(h_t);
///             transition select(h_t.v) { 7 : accept; default : reject; }
///         }
///     }
/// "#).unwrap();
/// let out = Synthesizer::new(DeviceProfile::tofino(), OptConfig::all())
///     .synthesize(&spec)
///     .unwrap();
/// assert!(out.program.entry_count() >= 1);
/// ```
pub struct Synthesizer {
    device: DeviceProfile,
    opts: OptConfig,
    params: SynthParams,
}

impl Synthesizer {
    /// Creates a synthesizer with default parameters.
    pub fn new(device: DeviceProfile, opts: OptConfig) -> Synthesizer {
        Synthesizer {
            device,
            opts,
            params: SynthParams::default(),
        }
    }

    /// Overrides the run parameters.
    pub fn with_params(mut self, params: SynthParams) -> Synthesizer {
        self.params = params;
        self
    }

    /// Compiles `spec` into a validated [`TcamProgram`].
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    pub fn synthesize(&self, spec: &ParserSpec) -> Result<SynthOutput, SynthError> {
        let _tracer_guard = self
            .params
            .tracer
            .as_ref()
            .map(|t| ph_obs::set_thread_tracer(t.clone()));
        let tracer = ph_obs::current();
        let _span = tracer.span("synth.total");
        spec.validate()
            .map_err(|e| SynthError::Unsupported(e.to_string()))?;
        if let Some(hook) = &self.params.cache {
            let hit = {
                let _s = tracer.span("cache.lookup");
                hook.0.lookup(spec, &self.device, self.opts, &self.params)
            };
            if let Some(mut out) = hit {
                tracer.count("svc.cache.hit", 1);
                out.stats.cache_hits = 1;
                out.stats.cache_misses = 0;
                return Ok(out);
            }
            tracer.count("svc.cache.miss", 1);
        }
        let mut result = if self.opts.opt7_parallel {
            parallel::synthesize_racing(spec, &self.device, self.opts, &self.params)
        } else {
            cegis::synthesize_one(
                spec,
                &self.device,
                self.opts,
                &self.params,
                cegis::LoopMode::Auto,
                None,
            )
        };
        if let Some(hook) = &self.params.cache {
            if let Ok(out) = &mut result {
                out.stats.cache_misses = 1;
                let _s = tracer.span("cache.store");
                hook.0
                    .store(spec, &self.device, self.opts, &self.params, out);
            }
        }
        result
    }

    /// The device profile this synthesizer targets.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The optimization configuration.
    pub fn opts(&self) -> OptConfig {
        self.opts
    }
}
