//! Final validation — the Fig. 22 simulator check.
//!
//! Runs the compiled program and the *original* specification side by side
//! on randomly sampled bitstreams (full length, truncated, and
//! boundary-biased so spec constants actually appear in keys) and reports
//! the first disagreement.  This is an independent end-to-end check of the
//! whole pipeline: reduction, synthesis, verification and post-processing.

use ph_bits::{BitString, Rng};
use ph_hw::{run_program, TcamProgram};
use ph_ir::{analysis, simulate, ParseStatus, ParserSpec};

/// Compares spec and program on `samples` sampled inputs.
///
/// # Errors
///
/// Returns a description of the first mismatching input.
pub fn check_program_against_spec(
    spec: &ParserSpec,
    program: &TcamProgram,
    seed: u64,
    samples: usize,
) -> Result<(), String> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xf1622);
    let iters = 64usize;
    let full = analysis::max_bits_consumed(spec, iters.min(24)).max(1);
    // Samples where the spec hit its iteration budget are incomparable and
    // skipped; a looping spec must not pass vacuously, so we demand that at
    // least half of the requested samples were actually compared.
    let mut effective = 0usize;

    // Constants worth planting into the stream (boundary bias).
    let constants: Vec<BitString> = spec
        .states
        .iter()
        .flat_map(|st| st.transitions.iter().map(|t| t.pattern.value().clone()))
        .collect();

    for round in 0..samples {
        // Length: mostly full, sometimes truncated.
        let len = match round % 4 {
            0 | 1 => full,
            2 => rng.gen_range(0..=full),
            _ => full + rng.gen_range(0..=16usize),
        };
        let mut input = BitString::zeros(len);
        for i in 0..len {
            input.set(i, rng.gen_bool(0.5));
        }
        // Plant a random spec constant at a random offset.
        if !constants.is_empty() && len > 0 && round % 3 == 0 {
            let c = &constants[rng.gen_range(0..constants.len())];
            if c.len() <= len {
                let off = rng.gen_range(0..=(len - c.len()));
                for i in 0..c.len() {
                    input.set(off + i, c.get(i));
                }
            }
        }

        let s = simulate(spec, &input, iters);
        if s.status == ParseStatus::IterationBudget {
            continue;
        }
        effective += 1;
        let h = run_program(program, &spec.fields, &input, iters * 4);
        if h.status == ParseStatus::IterationBudget {
            return Err(format!("program loops on input {input}"));
        }
        if s.status != h.status {
            return Err(format!(
                "status mismatch on {input}: spec {:?}, impl {:?}",
                s.status, h.status
            ));
        }
        if s.dict != h.dict {
            return Err(format!("dictionary mismatch on {input}"));
        }
    }
    if effective * 2 < samples {
        return Err(format!(
            "only {effective} of {samples} samples were comparable \
             (the spec hit its iteration budget on the rest)"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_baseline::translate::direct_translate;
    use ph_hw::DeviceProfile;
    use ph_p4f::parse_parser;

    #[test]
    fn correct_translation_passes() {
        let spec = parse_parser(
            r#"
            header h_t { ty : 4; }
            header a_t { v : 8; }
            parser {
                state start {
                    extract(h_t);
                    transition select(h_t.ty) { 7 : pa; default : accept; }
                }
                state pa { extract(a_t); transition accept; }
            }
            "#,
        )
        .unwrap();
        let prog = direct_translate(&spec, &DeviceProfile::tofino());
        check_program_against_spec(&spec, &prog, 1, 500).unwrap();
    }

    #[test]
    fn looping_spec_does_not_pass_vacuously() {
        // A spec that loops without consuming input hits the iteration
        // budget on every sample; every sample is incomparable, so the
        // check must report that instead of passing.
        use ph_ir::{Field, NextState, State, StateId};
        let spec = ph_ir::ParserSpec {
            fields: vec![Field::fixed("h_t.ty", 4)],
            states: vec![State {
                name: "start".into(),
                extracts: vec![],
                key: vec![],
                transitions: vec![],
                default: NextState::State(StateId(0)),
            }],
            start: StateId(0),
        };
        let prog = direct_translate(&spec, &DeviceProfile::tofino());
        let err = check_program_against_spec(&spec, &prog, 1, 100).unwrap_err();
        assert!(err.contains("comparable"), "{err}");
    }

    #[test]
    fn broken_program_caught() {
        let spec = parse_parser(
            r#"
            header h_t { ty : 4; }
            header a_t { v : 8; }
            parser {
                state start {
                    extract(h_t);
                    transition select(h_t.ty) { 7 : pa; default : accept; }
                }
                state pa { extract(a_t); transition accept; }
            }
            "#,
        )
        .unwrap();
        let mut prog = direct_translate(&spec, &DeviceProfile::tofino());
        // Corrupt: flip the rule's target to reject.
        for st in &mut prog.states {
            for e in &mut st.entries {
                if e.pattern.to_string() == "0111" {
                    e.next = ph_hw::HwNext::Reject;
                }
            }
        }
        assert!(check_program_against_spec(&spec, &prog, 1, 500).is_err());
    }
}
