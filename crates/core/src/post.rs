//! The post-synthesis optimizer (§5.3).
//!
//! The synthesis phase restricts each skeleton state to at most one field
//! extraction, which can leave chains of trivial states.  This pass:
//!
//! 1. prunes states the start state cannot reach;
//! 2. recursively merges a state that has exactly one always-matching entry
//!    into its predecessors' edges (the extraction moves onto the incoming
//!    entry), the paper's chain-merging rule;
//! 3. splits entries whose total extraction exceeds the device's
//!    per-entry extraction limit into continuation chains;
//! 4. renumbers pipeline stages densely.

use ph_hw::{DeviceProfile, HwEntry, HwNext, HwState, HwStateId, TcamProgram};

/// Runs every post-synthesis pass in order.  `fields` is the original
/// specification's field table (extraction widths).
pub fn optimize(prog: &mut TcamProgram, device: &DeviceProfile, fields: &[ph_ir::Field]) {
    prune_unreachable(prog);
    merge_chains(prog);
    prune_unreachable(prog);
    split_wide_extractions_with(prog, fields, device.extraction_limit);
    compact_stages(prog);
}

/// Drops unreachable states and remaps indices.
pub fn prune_unreachable(prog: &mut TcamProgram) {
    let n = prog.states.len();
    let mut seen = vec![false; n];
    let mut stack = vec![prog.start.0];
    while let Some(v) = stack.pop() {
        if seen[v] {
            continue;
        }
        seen[v] = true;
        for e in &prog.states[v].entries {
            if let HwNext::State(w) = e.next {
                stack.push(w.0);
            }
        }
    }
    let mut map = vec![usize::MAX; n];
    let mut states = Vec::new();
    for (i, st) in prog.states.iter().enumerate() {
        if seen[i] {
            map[i] = states.len();
            states.push(st.clone());
        }
    }
    for st in &mut states {
        for e in &mut st.entries {
            if let HwNext::State(w) = e.next {
                e.next = HwNext::State(HwStateId(map[w.0]));
            }
        }
    }
    prog.start = HwStateId(map[prog.start.0]);
    prog.states = states;
}

/// True when the state unconditionally forwards: exactly one entry whose
/// pattern matches every key.
fn is_trivial(st: &HwState) -> bool {
    st.entries.len() == 1 && st.entries[0].pattern.wildcard_bits() == st.entries[0].pattern.width()
}

/// Merges trivial states into their predecessors' entries.
pub fn merge_chains(prog: &mut TcamProgram) {
    loop {
        // Find a trivial, non-start state.
        let Some(t) =
            (0..prog.states.len()).find(|&i| i != prog.start.0 && is_trivial(&prog.states[i]))
        else {
            return;
        };
        let inner = prog.states[t].entries[0].clone();
        // A trivial self-loop cannot be merged away.
        if inner.next == HwNext::State(HwStateId(t)) {
            // Mark it non-mergeable by stopping; such a state would loop
            // forever and the verifier would have rejected it anyway.
            return;
        }
        for s in 0..prog.states.len() {
            if s == t {
                continue;
            }
            for e in prog.states[s].entries.iter_mut() {
                if e.next == HwNext::State(HwStateId(t)) {
                    e.extracts.extend(inner.extracts.iter().copied());
                    e.next = inner.next;
                }
            }
        }
        if prog.start.0 == t {
            return;
        }
        // t is now unreachable (or was already); prune and continue.
        prune_unreachable(prog);
        if prog.states.len() <= 1 {
            return;
        }
    }
}

/// Width-aware extraction splitting: entries extracting more than `limit`
/// bits are split into continuation chains, cutting at field boundaries.
pub fn split_wide_extractions_with(prog: &mut TcamProgram, fields: &[ph_ir::Field], limit: usize) {
    let mut s = 0;
    while s < prog.states.len() {
        let mut e = 0;
        while e < prog.states[s].entries.len() {
            let widths: Vec<usize> = prog.states[s].entries[e]
                .extracts
                .iter()
                .map(|f| fields[f.0].width)
                .collect();
            let total: usize = widths.iter().sum();
            if total > limit && widths.len() > 1 {
                // Keep a prefix within the limit; push the rest into a new
                // pass-through state.
                let mut acc = 0;
                let mut cut = 0;
                for (i, w) in widths.iter().enumerate() {
                    if acc + w > limit && i > 0 {
                        break;
                    }
                    acc += w;
                    cut = i + 1;
                }
                let cut = cut.max(1);
                let entry = &mut prog.states[s].entries[e];
                let rest = entry.extracts.split_off(cut);
                let old_next = entry.next;
                let cont = HwState {
                    name: format!("{}~x", prog.states[s].name),
                    stage: prog.states[s].stage,
                    key: Vec::new(),
                    entries: vec![HwEntry {
                        pattern: ph_bits::Ternary::any(0),
                        extracts: rest,
                        next: old_next,
                    }],
                };
                let id = HwStateId(prog.states.len());
                prog.states[s].entries[e].next = HwNext::State(id);
                prog.states.push(cont);
            }
            e += 1;
        }
        s += 1;
    }
}

/// Renumbers stages densely (0, 1, 2, ...) preserving relative order.
pub fn compact_stages(prog: &mut TcamProgram) {
    let mut used: Vec<usize> = prog.states.iter().map(|s| s.stage).collect();
    used.sort_unstable();
    used.dedup();
    for st in prog.states.iter_mut() {
        st.stage = used.binary_search(&st.stage).expect("stage present");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_bits::Ternary;
    use ph_ir::FieldId;

    fn entry(next: HwNext, extracts: Vec<usize>) -> HwEntry {
        HwEntry {
            pattern: Ternary::any(0),
            extracts: extracts.into_iter().map(FieldId).collect(),
            next,
        }
    }

    fn prog(states: Vec<HwState>) -> TcamProgram {
        TcamProgram {
            device: DeviceProfile::tofino(),
            states,
            start: HwStateId(0),
        }
    }

    fn state(name: &str, stage: usize, entries: Vec<HwEntry>) -> HwState {
        HwState {
            name: name.into(),
            stage,
            key: Vec::new(),
            entries,
        }
    }

    #[test]
    fn chain_merging_collapses_trivial_states() {
        // 0 -> 1 -> 2 -> accept, states 1 and 2 trivial extract-only.
        let mut p = prog(vec![
            state("a", 0, vec![entry(HwNext::State(HwStateId(1)), vec![0])]),
            state("b", 0, vec![entry(HwNext::State(HwStateId(2)), vec![1])]),
            state("c", 0, vec![entry(HwNext::Accept, vec![2])]),
        ]);
        // State 0 itself is trivial but is the start; 1 and 2 merge into it.
        merge_chains(&mut p);
        assert_eq!(p.states.len(), 1);
        assert_eq!(p.states[0].entries[0].next, HwNext::Accept);
        assert_eq!(
            p.states[0].entries[0].extracts,
            vec![FieldId(0), FieldId(1), FieldId(2)]
        );
    }

    #[test]
    fn nontrivial_states_survive_merging() {
        let keyed = HwState {
            name: "k".into(),
            stage: 0,
            key: Vec::new(),
            entries: vec![
                HwEntry {
                    pattern: Ternary::any(0),
                    extracts: vec![],
                    next: HwNext::Accept,
                },
                HwEntry {
                    pattern: Ternary::any(0),
                    extracts: vec![],
                    next: HwNext::Reject,
                },
            ],
        };
        let mut p = prog(vec![
            state("a", 0, vec![entry(HwNext::State(HwStateId(1)), vec![0])]),
            keyed,
        ]);
        merge_chains(&mut p);
        assert_eq!(p.states.len(), 2);
    }

    #[test]
    fn unreachable_pruned() {
        let mut p = prog(vec![
            state("a", 0, vec![entry(HwNext::Accept, vec![])]),
            state("zombie", 0, vec![entry(HwNext::Accept, vec![])]),
        ]);
        prune_unreachable(&mut p);
        assert_eq!(p.states.len(), 1);
    }

    #[test]
    fn wide_extraction_split() {
        let fields = vec![
            ph_ir::Field::fixed("a", 60),
            ph_ir::Field::fixed("b", 60),
            ph_ir::Field::fixed("c", 60),
        ];
        let mut p = prog(vec![state(
            "s",
            0,
            vec![entry(HwNext::Accept, vec![0, 1, 2])],
        )]);
        split_wide_extractions_with(&mut p, &fields, 128);
        // 180 bits split at field boundaries: [a, b] then [c].
        assert_eq!(p.states.len(), 2);
        assert_eq!(p.states[0].entries[0].extracts.len(), 2);
        assert_eq!(p.states[1].entries[0].extracts.len(), 1);
        assert_eq!(p.states[1].entries[0].next, HwNext::Accept);
    }

    #[test]
    fn stage_compaction() {
        let mut p = prog(vec![
            state("a", 0, vec![entry(HwNext::State(HwStateId(1)), vec![])]),
            state("b", 4, vec![entry(HwNext::State(HwStateId(2)), vec![])]),
            state("c", 9, vec![entry(HwNext::Accept, vec![])]),
        ]);
        compact_stages(&mut p);
        assert_eq!(
            p.states.iter().map(|s| s.stage).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}
