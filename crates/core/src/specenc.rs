//! Specification encoding for the verification phase — φ_spec of Fig. 12.
//!
//! The (reduced) specification is a concrete program, so for a symbolic
//! input of exactly `L` bits every execution path has *concrete* extraction
//! positions; only the branch conditions involve the input.  We enumerate
//! the paths and return, per path, its condition term and its concrete
//! outcome (status plus each field's position/width in the input).  The
//! CEGIS verifier then asserts "some path's condition holds and the
//! implementation's outcome differs".

use ph_ir::{KeyPart, NextState, ParserSpec, StateId};
use ph_smt::{Smt, Term};

/// How a spec path terminates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathStatus {
    /// Reached `accept`.
    Accept,
    /// Reached `reject`.
    Reject,
    /// Ran out of the `L`-bit input mid-extraction (possible for loopy
    /// specs, whose consumption is input-dependent).
    OutOfInput,
}

/// One fully-resolved execution path of the specification.
#[derive(Clone, Debug)]
pub struct SpecPath {
    /// Conjunction of the branch conditions taken.
    pub cond: Term,
    /// Terminal status.
    pub status: PathStatus,
    /// Per field: `Some((pos, width))` where its final value sits in the
    /// input, `None` when never extracted.
    pub dict: Vec<Option<(usize, usize)>>,
}

/// Enumerates all spec paths over a symbolic `input` of width `L`.
///
/// # Errors
///
/// Returns a message when the path count exceeds `max_paths` or a path
/// exceeds `max_depth` state visits (guards against mis-specified bounds).
pub fn encode_spec_paths(
    smt: &mut Smt,
    spec: &ParserSpec,
    input: Term,
    max_depth: usize,
    max_paths: usize,
) -> Result<Vec<SpecPath>, String> {
    let l = smt.width(input) as usize;
    let mut out = Vec::new();
    let tt = smt.tt();
    let dict = vec![None; spec.fields.len()];
    walk(
        smt, spec, input, l, spec.start, 0, tt, dict, max_depth, max_paths, &mut out,
    )?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn walk(
    smt: &mut Smt,
    spec: &ParserSpec,
    input: Term,
    l: usize,
    state: StateId,
    mut pos: usize,
    cond: Term,
    mut dict: Vec<Option<(usize, usize)>>,
    depth_left: usize,
    max_paths: usize,
    out: &mut Vec<SpecPath>,
) -> Result<(), String> {
    if out.len() > max_paths {
        return Err(format!("more than {max_paths} spec paths"));
    }
    if depth_left == 0 {
        return Err("spec path exceeds the computed iteration bound".into());
    }
    let st = spec.state(state);

    // Extraction: concrete positions.  Running past the end of the input
    // terminates the path with the partial dictionary (the simulator's
    // OutOfInput semantics) — reachable for loopy specs whose consumption
    // depends on the input.
    for &f in &st.extracts {
        let w = spec.field(f).width;
        if pos + w > l {
            out.push(SpecPath {
                cond,
                status: PathStatus::OutOfInput,
                dict,
            });
            return Ok(());
        }
        dict[f.0] = Some((pos, w));
        pos += w;
    }

    // Branching.
    let finish = |smt: &mut Smt,
                  cond: Term,
                  next: NextState,
                  dict: Vec<Option<(usize, usize)>>,
                  out: &mut Vec<SpecPath>|
     -> Result<(), String> {
        match next {
            NextState::Accept => {
                out.push(SpecPath {
                    cond,
                    status: PathStatus::Accept,
                    dict,
                });
                Ok(())
            }
            NextState::Reject => {
                out.push(SpecPath {
                    cond,
                    status: PathStatus::Reject,
                    dict,
                });
                Ok(())
            }
            NextState::State(t) => walk(
                smt,
                spec,
                input,
                l,
                t,
                pos,
                cond,
                dict,
                depth_left - 1,
                max_paths,
                out,
            ),
        }
    };

    if st.key.is_empty() {
        return finish(smt, cond, st.default, dict, out);
    }

    // Build the key term at this path's concrete cursor.
    let mut key: Option<Term> = None;
    for kp in &st.key {
        let part = match *kp {
            KeyPart::Slice { field, start, end } => match dict[field.0] {
                Some((fp, _w)) => smt.extract(input, (fp + start) as u32, (fp + end) as u32),
                None => smt.const_u64(0, (end - start) as u32),
            },
            KeyPart::Lookahead { start, end } => {
                let lo = (pos + start).min(l);
                let hi = (pos + end).min(l);
                let w = end - start;
                if lo < hi {
                    let head = smt.extract(input, lo as u32, hi as u32);
                    if hi - lo < w {
                        let pad = smt.const_u64(0, (w - (hi - lo)) as u32);
                        smt.concat(head, pad)
                    } else {
                        head
                    }
                } else {
                    smt.const_u64(0, w as u32)
                }
            }
        };
        key = Some(match key {
            None => part,
            Some(k) => smt.concat(k, part),
        });
    }
    let key = key.expect("non-empty key");

    // First-match semantics: rule i fires when its pattern matches and no
    // earlier one does; the default fires when none matches.
    let mut none_before = cond;
    for tr in &st.transitions {
        let v = smt.const_bits(tr.pattern.value().clone());
        let m = smt.const_bits(tr.pattern.mask().clone());
        let km = smt.and(key, m);
        let vm = smt.and(v, m);
        let hit = smt.eq(km, vm);
        let fire = smt.and(none_before, hit);
        finish(smt, fire, tr.next, dict.clone(), out)?;
        let miss = smt.not(hit);
        none_before = smt.and(none_before, miss);
    }
    finish(smt, none_before, st.default, dict, out)
}

/// Builds the "some path mismatches the implementation" term used as the
/// verification query, given the implementation outcome terms.
#[allow(clippy::too_many_arguments)]
pub fn mismatch_term(
    smt: &mut Smt,
    paths: &[SpecPath],
    input: Term,
    impl_status: Term,
    impl_defined: &[Term],
    impl_values: &[Term],
    accept_code: u64,
    reject_code: u64,
    ooi_code: u64,
) -> Term {
    let sbits = smt.width(impl_status);
    let mut any = smt.ff();
    for p in paths {
        let code = match p.status {
            PathStatus::Accept => accept_code,
            PathStatus::Reject => reject_code,
            PathStatus::OutOfInput => ooi_code,
        };
        let want = smt.const_u64(code, sbits);
        let mut diff = smt.ne(impl_status, want);
        for (f, slot) in p.dict.iter().enumerate() {
            match *slot {
                Some((fp, w)) => {
                    let nd = smt.not(impl_defined[f]);
                    let expect = smt.extract(input, fp as u32, (fp + w) as u32);
                    let ne = smt.ne(impl_values[f], expect);
                    let bad = smt.or(nd, ne);
                    diff = smt.or(diff, bad);
                }
                None => {
                    diff = smt.or(diff, impl_defined[f]);
                }
            }
        }
        let hit = smt.and(p.cond, diff);
        any = smt.or(any, hit);
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_ir::simulate;
    use ph_p4f::parse_parser;

    fn spec() -> ParserSpec {
        parse_parser(
            r#"
            header h_t { f0 : 4; f1 : 4; }
            parser {
                state start {
                    extract(h_t.f0);
                    transition select(h_t.f0[0:2]) {
                        0b01 : s1;
                        0b1* : reject;
                        default : accept;
                    }
                }
                state s1 { extract(h_t.f1); transition accept; }
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn path_enumeration_counts() {
        let spec = spec();
        let mut smt = Smt::new();
        let input = smt.var("i", 8);
        let paths = encode_spec_paths(&mut smt, &spec, input, 4, 64).unwrap();
        // rule 0b01 -> s1 -> accept; rule 0b1* -> reject; default -> accept.
        assert_eq!(paths.len(), 3);
        assert_eq!(
            paths
                .iter()
                .filter(|p| p.status == PathStatus::Accept)
                .count(),
            2
        );
    }

    /// The paths' conditions must partition the input space consistently
    /// with the simulator: for every input exactly one path condition holds
    /// and its outcome equals the simulator's.
    #[test]
    fn paths_agree_with_simulator() {
        let spec = spec();
        for val in 0..=255u64 {
            let input_bits = ph_bits::BitString::from_u64(val, 8);
            let expect = simulate(&spec, &input_bits, 8);
            let mut smt = Smt::new();
            let input = smt.const_bits(input_bits.clone());
            let paths = encode_spec_paths(&mut smt, &spec, input, 4, 64).unwrap();
            // With a constant input every condition folds to a constant;
            // model_value evaluates it after a (trivial) check.
            assert!(smt.check().is_sat());
            let mut fired = 0;
            for p in &paths {
                if smt.model_bool(p.cond) {
                    fired += 1;
                    let want = match expect.status {
                        ph_ir::ParseStatus::Accept => PathStatus::Accept,
                        ph_ir::ParseStatus::Reject => PathStatus::Reject,
                        _ => PathStatus::OutOfInput,
                    };
                    assert_eq!(p.status, want, "input {input_bits}");
                    for (f, slot) in p.dict.iter().enumerate() {
                        let fid = ph_ir::FieldId(f);
                        match *slot {
                            Some((fp, w)) => {
                                let v = input_bits.slice(fp, fp + w);
                                assert_eq!(Some(&v), expect.dict.get(fid));
                            }
                            None => assert!(expect.dict.get(fid).is_none()),
                        }
                    }
                }
            }
            assert_eq!(fired, 1, "exactly one path per input ({input_bits})");
        }
    }

    #[test]
    fn bad_bounds_are_reported() {
        let spec = spec();
        let mut smt = Smt::new();
        let input = smt.var("i", 4); // too short: s1's extraction overruns
        let paths = encode_spec_paths(&mut smt, &spec, input, 4, 64).unwrap();
        assert!(paths.iter().any(|p| p.status == PathStatus::OutOfInput));

        let mut smt = Smt::new();
        let input = smt.var("i", 8);
        let err = encode_spec_paths(&mut smt, &spec, input, 1, 64).unwrap_err();
        assert!(err.contains("iteration bound"));
    }
}
