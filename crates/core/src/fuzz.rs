//! Differential packet-fuzzing oracle — the Fig. 22 check grown into a
//! subsystem.
//!
//! [`check_program_against_spec`](crate::validate) samples uniform random
//! bitstreams; parser-equivalence bugs hide exactly in the boundary cases
//! (truncation mid-extraction, lookahead windows straddling the end of the
//! packet, varbit length extremes) that uniform sampling almost never
//! hits.  This module generates packets *grammar-aware*: it walks the
//! specification's transition graph, materializes one packet per accepting
//! path by planting each chosen transition pattern's care bits concretely,
//! and then derives mutants from every seed:
//!
//! * **flip** — each planted constant bit flipped, so near-miss keys are
//!   exercised;
//! * **truncate** — the packet cut at (and one bit before) every
//!   extraction boundary;
//! * **ctrl-extreme** — every varbit control field forced to all-zeros and
//!   all-ones, driving the extraction length to its 0/max extremes;
//! * **lookahead** — lengths that leave a lookahead window partially past
//!   the end of the input (hardware pads with zeros; the program must
//!   agree);
//! * **extend** — random bits appended past the accepting length;
//! * **random** — plain uniform bitstreams, kept as a baseline class.
//!
//! Every packet is run through the spec simulator ([`ph_ir::simulate`])
//! and each program under test ([`ph_hw::run_program`]); the `fuzz_e2e`
//! binary three-way-compares the synthesized program and the baseline
//! `direct_translate` program against the spec.  A disagreement is
//! ddmin-shrunk to a minimal bitstream and reported as a structured
//! [`Divergence`] (state paths, first differing dictionary field,
//! machine-readable via [`Divergence::to_json`]).
//!
//! [`SynthParams::e2e_samples`](crate::SynthParams) runs this oracle as a
//! post-verification gate inside `synthesize()` itself.

use ph_bits::{BitString, Rng};
use ph_hw::{run_program, TcamProgram};
use ph_ir::{
    analysis, simulate, varbit_len, FieldKind, KeyPart, NextState, ParseStatus, ParserSpec,
    SimResult, StateId,
};
use ph_obs::Json;

/// Knobs of a fuzzing run.  The defaults are sized for one benchmark case;
/// `packet_budget` is the overall scale lever.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Seed for free-bit filling, random packets and mutant sampling.
    pub seed: u64,
    /// Cap on accepting paths materialized into seed packets.
    pub max_paths: usize,
    /// Cap on planted-bit flip mutants per seed packet.
    pub max_flips: usize,
    /// Uniform random packets appended after the grammar-aware classes.
    pub random_samples: usize,
    /// Spec-side iteration budget (programs get four times as many).
    pub iters: usize,
    /// ddmin-shrink divergences before reporting them.
    pub shrink: bool,
    /// Stop after this many divergences have been reported.
    pub max_divergences: usize,
    /// Overall cap on packets compared (0 = unlimited).
    pub packet_budget: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0x9aa5,
            max_paths: 64,
            max_flips: 64,
            random_samples: 64,
            iters: 64,
            shrink: true,
            max_divergences: 8,
            packet_budget: 0,
        }
    }
}

/// How a spec/program disagreement manifested.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DivergenceKind {
    /// Termination statuses differ.
    Status,
    /// Statuses agree but the output dictionaries differ.
    Dict,
    /// The program exceeded its iteration budget while the spec terminated.
    Loop,
}

impl DivergenceKind {
    fn as_str(self) -> &'static str {
        match self {
            DivergenceKind::Status => "status",
            DivergenceKind::Dict => "dict",
            DivergenceKind::Loop => "loop",
        }
    }
}

/// A confirmed, shrunk spec/program disagreement.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Name of the diverging program (e.g. `"synth"`, `"direct"`).
    pub subject: String,
    /// Generator class that produced the original input.
    pub generator: &'static str,
    /// The (ddmin-minimal when shrinking is on) diverging bitstream.
    pub input: BitString,
    /// What kind of disagreement this is.
    pub kind: DivergenceKind,
    /// Spec termination status on `input`.
    pub spec_status: ParseStatus,
    /// Program termination status on `input`.
    pub impl_status: ParseStatus,
    /// Spec state-id path on `input`.
    pub spec_path: Vec<usize>,
    /// Program state-id path on `input`.
    pub impl_path: Vec<usize>,
    /// First dictionary field whose value differs (Dict divergences).
    pub first_diff_field: Option<String>,
    /// ddmin trials spent minimizing `input`.
    pub shrink_steps: u64,
}

impl Divergence {
    /// The divergence as a JSON object (the `results/fuzz_e2e.json` and
    /// trace payload; `check_schema` validates this shape).
    pub fn to_json(&self) -> Json {
        let path_json = |p: &[usize]| Json::Arr(p.iter().map(|&s| Json::from(s as u64)).collect());
        Json::obj()
            .with("subject", self.subject.as_str())
            .with("generator", self.generator)
            .with("input", self.input.to_string())
            .with("input_bits", self.input.len())
            .with("kind", self.kind.as_str())
            .with("spec_status", format!("{:?}", self.spec_status).as_str())
            .with("impl_status", format!("{:?}", self.impl_status).as_str())
            .with("spec_path", path_json(&self.spec_path))
            .with("impl_path", path_json(&self.impl_path))
            .with(
                "first_diff_field",
                match &self.first_diff_field {
                    Some(f) => Json::from(f.as_str()),
                    None => Json::Null,
                },
            )
            .with("shrink_steps", self.shrink_steps)
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} diverges ({}) on {}-bit input {} [spec {:?} path {:?}, impl {:?} path {:?}{}]",
            self.subject,
            self.kind.as_str(),
            self.input.len(),
            self.input,
            self.spec_status,
            self.spec_path,
            self.impl_status,
            self.impl_path,
            match &self.first_diff_field {
                Some(fd) => format!(", first diff field {fd}"),
                None => String::new(),
            }
        )
    }
}

/// Aggregate counters of one fuzzing run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FuzzStats {
    /// Seed packets materialized from accepting paths.
    pub seeds: u64,
    /// Packets compared (per program pair).
    pub packets: u64,
    /// Divergences reported.
    pub divergences: u64,
    /// Packets skipped because the spec hit its iteration budget.
    pub incomparable: u64,
    /// Total ddmin trials across all shrunk divergences.
    pub shrink_steps: u64,
}

impl FuzzStats {
    /// The counters as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("seeds", self.seeds)
            .with("packets", self.packets)
            .with("divergences", self.divergences)
            .with("incomparable", self.incomparable)
            .with("shrink_steps", self.shrink_steps)
    }
}

/// Result of one fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Aggregate counters.
    pub stats: FuzzStats,
    /// Reported divergences (capped at [`FuzzConfig::max_divergences`]).
    pub divergences: Vec<Divergence>,
}

impl FuzzReport {
    /// True when every compared packet agreed.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Grammar-aware seed generation
// ---------------------------------------------------------------------------

/// Where the *last* extraction of a field landed in the packet.
#[derive(Clone, Copy)]
struct DictSrc {
    /// Packet bit position of the extraction's first bit.
    start: usize,
    /// Bits actually taken (may be less than `width` for varbit fields).
    take: usize,
    /// Declared field width (varbit values are left-padded to this).
    width: usize,
}

/// A packet materialized from one accepting path, with the provenance the
/// mutant generators need.
#[derive(Clone, Debug)]
pub struct SeedPacket {
    /// The concrete packet.
    pub bits: BitString,
    /// Packet bit positions planted from transition-pattern care bits.
    pub planted: Vec<usize>,
    /// Cursor positions after each completed field extraction.
    pub boundaries: Vec<usize>,
    /// Packet bit ranges `[start, end)` backing varbit control values.
    pub control_ranges: Vec<(usize, usize)>,
    /// Packet lengths that cut a lookahead window part-way.
    pub lookahead_probes: Vec<usize>,
    /// The state-id path the generator followed.
    pub path: Vec<usize>,
}

/// One step of an accepting path: a state plus the transition taken out of
/// it (`None` = the default transition).
type PathStep = (StateId, Option<usize>);

/// Enumerates paths through the transition graph that end in `Accept`,
/// depth-bounded by `max_depth` states and capped at `cap` paths.  Loopy
/// specs contribute their unrollings up to the depth bound.
fn accepting_paths(spec: &ParserSpec, max_depth: usize, cap: usize) -> Vec<Vec<PathStep>> {
    let mut out: Vec<Vec<PathStep>> = Vec::new();
    let mut prefix: Vec<PathStep> = Vec::new();

    fn visit(
        spec: &ParserSpec,
        s: StateId,
        prefix: &mut Vec<PathStep>,
        out: &mut Vec<Vec<PathStep>>,
        max_depth: usize,
        cap: usize,
    ) {
        if out.len() >= cap || prefix.len() >= max_depth {
            return;
        }
        let st = spec.state(s);
        let choices = st
            .transitions
            .iter()
            .enumerate()
            .map(|(i, t)| (Some(i), t.next))
            .chain(std::iter::once((None, st.default)));
        for (choice, next) in choices {
            if out.len() >= cap {
                return;
            }
            prefix.push((s, choice));
            match next {
                NextState::Accept => out.push(prefix.clone()),
                NextState::Reject => {}
                NextState::State(n) => visit(spec, n, prefix, out, max_depth, cap),
            }
            prefix.pop();
        }
    }

    visit(spec, spec.start, &mut prefix, &mut out, max_depth, cap);
    out
}

/// Materializes one accepting path into a concrete packet.
///
/// The walk mirrors the spec simulator: extractions append fresh packet
/// bits at the cursor, and the chosen transition's pattern care bits are
/// planted back into the packet positions its key reads (field slices via
/// the last extraction's location, lookahead bits directly at the cursor).
/// Conflicting constraints overwrite (last plant wins) — the packet is a
/// valid input either way, and the simulators decide its true behaviour.
fn materialize(spec: &ParserSpec, path: &[PathStep], rng: &mut Rng) -> SeedPacket {
    let mut bits: Vec<Option<bool>> = Vec::new();
    let mut dict_src: Vec<Option<DictSrc>> = vec![None; spec.fields.len()];
    let mut pos = 0usize;
    let mut planted = Vec::new();
    let mut boundaries = Vec::new();
    let mut control_ranges = Vec::new();
    let mut lookahead_probes = Vec::new();

    let ensure_len = |bits: &mut Vec<Option<bool>>, len: usize| {
        while bits.len() < len {
            bits.push(None);
        }
    };

    for &(sid, choice) in path {
        let st = spec.state(sid);

        for &fid in &st.extracts {
            let field = spec.field(fid);
            let take = match &field.kind {
                FieldKind::Fixed => field.width,
                FieldKind::Var(v) => {
                    // Resolve the control field's free bits now so the
                    // length is concrete (and mutable by the ctrl-extreme
                    // mutant class later).
                    let ctrl = match dict_src[v.control.0] {
                        Some(src) => {
                            for b in bits.iter_mut().skip(src.start).take(src.take) {
                                if b.is_none() {
                                    *b = Some(rng.gen_bool(0.5));
                                }
                            }
                            control_ranges.push((src.start, src.start + src.take));
                            let mut val = BitString::zeros(src.width - src.take);
                            for b in &bits[src.start..src.start + src.take] {
                                val.push(b.unwrap_or(false));
                            }
                            Some(val)
                        }
                        None => None,
                    };
                    varbit_len(ctrl.as_ref(), v, field.width)
                }
            };
            ensure_len(&mut bits, pos + take);
            dict_src[fid.0] = Some(DictSrc {
                start: pos,
                take,
                width: field.width,
            });
            pos += take;
            boundaries.push(pos);
        }

        // Record lengths that cut this state's lookahead windows part-way.
        for kp in &st.key {
            if let KeyPart::Lookahead { start, end } = *kp {
                lookahead_probes.push(pos + start);
                lookahead_probes.push(pos + end - 1);
            }
        }

        // Plant the chosen transition pattern's care bits.
        if let Some(ti) = choice {
            let pat = &st.transitions[ti].pattern;
            let mut kb = 0usize;
            for kp in &st.key {
                match *kp {
                    KeyPart::Slice { field, start, end } => {
                        for i in start..end {
                            if pat.mask().get(kb) {
                                if let Some(src) = dict_src[field.0] {
                                    let pad = src.width - src.take;
                                    if i >= pad {
                                        let p = src.start + (i - pad);
                                        bits[p] = Some(pat.value().get(kb));
                                        planted.push(p);
                                    }
                                    // Bits in the left-padding read as zero;
                                    // a pattern demanding 1 there simply
                                    // cannot be satisfied — leave it.
                                }
                            }
                            kb += 1;
                        }
                    }
                    KeyPart::Lookahead { start, end } => {
                        for i in start..end {
                            if pat.mask().get(kb) {
                                let p = pos + i;
                                ensure_len(&mut bits, p + 1);
                                bits[p] = Some(pat.value().get(kb));
                                planted.push(p);
                            }
                            kb += 1;
                        }
                    }
                }
            }
        }
    }

    // Fill the remaining free bits randomly.
    let mut packet = BitString::zeros(bits.len());
    for (i, b) in bits.iter().enumerate() {
        packet.set(i, b.unwrap_or_else(|| rng.gen_bool(0.5)));
    }
    planted.sort_unstable();
    planted.dedup();
    boundaries.dedup();
    lookahead_probes.sort_unstable();
    lookahead_probes.dedup();

    SeedPacket {
        bits: packet,
        planted,
        boundaries,
        control_ranges,
        lookahead_probes,
        path: path.iter().map(|&(s, _)| s.0).collect(),
    }
}

/// Generates the grammar-aware seed packets for `spec`: one per accepting
/// path (depth- and count-capped by `cfg`).
pub fn seed_packets(spec: &ParserSpec, cfg: &FuzzConfig, rng: &mut Rng) -> Vec<SeedPacket> {
    // Loop-free specs visit each state at most once; loopy specs get their
    // unrollings bounded to a depth that keeps path counts sane.
    let depth = analysis::max_path_states(spec, 12).max(2);
    accepting_paths(spec, depth, cfg.max_paths)
        .iter()
        .map(|p| materialize(spec, p, rng))
        .collect()
}

/// Derives the mutant packets of one seed, tagged with their generator
/// class.
pub fn mutants(
    seed: &SeedPacket,
    cfg: &FuzzConfig,
    rng: &mut Rng,
) -> Vec<(&'static str, BitString)> {
    let mut out: Vec<(&'static str, BitString)> = Vec::new();
    let b = &seed.bits;
    out.push(("path", b.clone()));

    // Flip each planted constant bit (near-miss keys).
    for &p in seed.planted.iter().take(cfg.max_flips) {
        let mut m = b.clone();
        m.set(p, !m.get(p));
        out.push(("flip", m));
    }

    // Truncate at (and one bit before) every extraction boundary.
    for &cut in &seed.boundaries {
        if cut <= b.len() {
            out.push(("truncate", b.slice(0, cut)));
        }
        if cut >= 1 && cut - 1 <= b.len() {
            out.push(("truncate", b.slice(0, cut - 1)));
        }
    }

    // Varbit control extremes: all-zeros (length offset only) and all-ones
    // (clamped to the declared maximum).
    for &(s, e) in &seed.control_ranges {
        let mut zero = b.clone();
        let mut ones = b.clone();
        for i in s..e.min(b.len()) {
            zero.set(i, false);
            ones.set(i, true);
        }
        out.push(("ctrl-extreme", zero));
        out.push(("ctrl-extreme", ones));
    }

    // Lengths that leave a lookahead window partially past the end.
    for &cut in &seed.lookahead_probes {
        if cut < b.len() {
            out.push(("lookahead", b.slice(0, cut)));
        }
    }

    // Random bits appended past the accepting length.
    let mut ext = b.clone();
    for _ in 0..16 {
        ext.push(rng.gen_bool(0.5));
    }
    out.push(("extend", ext));

    out
}

// ---------------------------------------------------------------------------
// The differential oracle
// ---------------------------------------------------------------------------

/// Outcome of comparing spec and one program on one input.
enum Outcome {
    Agree,
    /// The spec hit its iteration budget; nothing to compare.
    Incomparable,
    Diverged(Box<Divergence>),
}

fn compare_one(
    spec: &ParserSpec,
    subject: &str,
    program: &TcamProgram,
    input: &BitString,
    iters: usize,
    generator: &'static str,
) -> Outcome {
    let s = simulate(spec, input, iters);
    if s.status == ParseStatus::IterationBudget {
        return Outcome::Incomparable;
    }
    let h = run_program(program, &spec.fields, input, iters * 4);
    let make = |kind, s: &SimResult, h: &SimResult, first_diff: Option<String>| {
        Outcome::Diverged(Box::new(Divergence {
            subject: subject.to_string(),
            generator,
            input: input.clone(),
            kind,
            spec_status: s.status,
            impl_status: h.status,
            spec_path: s.path.clone(),
            impl_path: h.path.clone(),
            first_diff_field: first_diff,
            shrink_steps: 0,
        }))
    };
    if h.status == ParseStatus::IterationBudget {
        return make(DivergenceKind::Loop, &s, &h, None);
    }
    if s.status != h.status {
        return make(DivergenceKind::Status, &s, &h, None);
    }
    if s.dict != h.dict {
        let first = (0..spec.fields.len())
            .map(ph_ir::FieldId)
            .find(|&f| s.dict.get(f) != h.dict.get(f))
            .map(|f| spec.field(f).name.clone());
        return make(DivergenceKind::Dict, &s, &h, first);
    }
    Outcome::Agree
}

/// True when `input` still makes `program` diverge from `spec` (any kind).
fn still_diverges(
    spec: &ParserSpec,
    program: &TcamProgram,
    input: &BitString,
    iters: usize,
) -> bool {
    matches!(
        compare_one(spec, "", program, input, iters, "shrink"),
        Outcome::Diverged(_)
    )
}

/// ddmin-style input minimization: removes complement chunks at doubling
/// granularity while the divergence persists, then zeroes residual one
/// bits to normalize the witness.  Returns the shrunk input; `steps`
/// counts oracle trials.
pub fn ddmin(
    spec: &ParserSpec,
    program: &TcamProgram,
    input: &BitString,
    iters: usize,
    max_trials: u64,
    steps: &mut u64,
) -> BitString {
    let mut cur = input.clone();
    // Removal and normalization unlock each other (zeroing a varbit control
    // shortens the parse, which makes tail chunks removable; removing bits
    // exposes new one bits to zero), so iterate both to a fixpoint.
    loop {
        let before = cur.clone();

        // Chunk-removal pass at doubling granularity.
        let mut n = 2usize;
        'outer: while cur.len() >= 2 && n <= cur.len() && *steps < max_trials {
            let chunk = cur.len().div_ceil(n);
            let mut start = 0usize;
            while start < cur.len() && *steps < max_trials {
                let end = (start + chunk).min(cur.len());
                let cand = cur.slice(0, start).concat(&cur.slice(end, cur.len()));
                *steps += 1;
                if !cand.is_empty() && still_diverges(spec, program, &cand, iters) {
                    cur = cand;
                    n = n.saturating_sub(1).max(2);
                    continue 'outer;
                }
                start = end;
            }
            if chunk == 1 {
                break;
            }
            n = (2 * n).min(cur.len());
        }

        // Normalization pass: prefer the all-zeros-est witness.
        for i in 0..cur.len() {
            if *steps >= max_trials {
                break;
            }
            if cur.get(i) {
                let mut cand = cur.clone();
                cand.set(i, false);
                *steps += 1;
                if still_diverges(spec, program, &cand, iters) {
                    cur = cand;
                }
            }
        }

        if cur == before || *steps >= max_trials {
            return cur;
        }
    }
}

/// Runs the differential oracle: every grammar-aware seed, its mutants and
/// a tail of uniform random packets, each compared across `programs`.
/// Divergences are shrunk (when configured) and reported structurally.
pub fn fuzz(spec: &ParserSpec, programs: &[(&str, &TcamProgram)], cfg: &FuzzConfig) -> FuzzReport {
    let tracer = ph_obs::current();
    let _span = tracer.span("fuzz.case");
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xf0225eed);
    let mut stats = FuzzStats::default();
    let mut divergences: Vec<Divergence> = Vec::new();

    let seeds = seed_packets(spec, cfg, &mut rng);
    stats.seeds = seeds.len() as u64;

    let budget_left = |stats: &FuzzStats, divs: &Vec<Divergence>| {
        divs.len() < cfg.max_divergences
            && (cfg.packet_budget == 0 || (stats.packets as usize) < cfg.packet_budget)
    };

    let run_input = |generator: &'static str,
                     input: &BitString,
                     stats: &mut FuzzStats,
                     divergences: &mut Vec<Divergence>| {
        for &(name, program) in programs {
            if !budget_left(stats, divergences) {
                return;
            }
            stats.packets += 1;
            tracer.count("fuzz.packets", 1);
            match compare_one(spec, name, program, input, cfg.iters, generator) {
                Outcome::Agree => {}
                Outcome::Incomparable => stats.incomparable += 1,
                Outcome::Diverged(mut d) => {
                    if cfg.shrink {
                        let mut steps = 0u64;
                        let small = ddmin(spec, program, input, cfg.iters, 2000, &mut steps);
                        // Re-derive the report on the minimal input so the
                        // paths/statuses describe what is actually shipped.
                        if let Outcome::Diverged(sd) =
                            compare_one(spec, name, program, &small, cfg.iters, generator)
                        {
                            d = sd;
                        }
                        d.shrink_steps = steps;
                        stats.shrink_steps += steps;
                        tracer.count("fuzz.shrink_steps", steps);
                    }
                    stats.divergences += 1;
                    tracer.count("fuzz.divergences", 1);
                    divergences.push(*d);
                }
            }
        }
    };

    for seed in &seeds {
        if !budget_left(&stats, &divergences) {
            break;
        }
        for (generator, input) in mutants(seed, cfg, &mut rng) {
            run_input(generator, &input, &mut stats, &mut divergences);
        }
    }

    // Uniform random tail — the original Fig. 22 sampler, kept as a class.
    let full = analysis::max_bits_consumed(spec, cfg.iters.min(24)).max(1);
    for round in 0..cfg.random_samples {
        if !budget_left(&stats, &divergences) {
            break;
        }
        let len = match round % 4 {
            0 | 1 => full,
            2 => rng.gen_range(0..=full),
            _ => full + rng.gen_range(0..=16usize),
        };
        let mut input = BitString::zeros(len);
        for i in 0..len {
            input.set(i, rng.gen_bool(0.5));
        }
        run_input("random", &input, &mut stats, &mut divergences);
    }

    FuzzReport { stats, divergences }
}

/// The post-verification gate used by `synthesize()` when
/// [`SynthParams::e2e_samples`](crate::SynthParams) is non-zero: runs the
/// oracle with an overall packet budget and returns the first (shrunk)
/// divergence as an error.
///
/// # Errors
///
/// The first divergence found, minimized.
pub fn check_e2e(
    spec: &ParserSpec,
    program: &TcamProgram,
    seed: u64,
    samples: usize,
) -> Result<FuzzStats, Box<Divergence>> {
    let cfg = FuzzConfig {
        seed,
        max_paths: 32,
        max_flips: 32,
        random_samples: samples / 4,
        max_divergences: 1,
        packet_budget: samples,
        ..FuzzConfig::default()
    };
    let report = fuzz(spec, &[("synth", program)], &cfg);
    match report.divergences.into_iter().next() {
        None => Ok(report.stats),
        Some(d) => Err(Box::new(d)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_ir::{Field, FieldId, State, Transition, VarLen};

    /// Spec2 from Fig. 7 plus a varbit tail: start keys on the first bit
    /// of an extracted nibble, then a control+varbit state.
    fn varbit_spec() -> ParserSpec {
        ParserSpec {
            fields: vec![
                Field::fixed("sel", 4),
                Field::fixed("ctl", 3),
                Field {
                    name: "opts".into(),
                    width: 8,
                    kind: FieldKind::Var(VarLen {
                        control: FieldId(1),
                        multiplier: 2,
                        offset: 0,
                    }),
                },
            ],
            states: vec![
                State {
                    name: "start".into(),
                    extracts: vec![FieldId(0)],
                    key: vec![KeyPart::Slice {
                        field: FieldId(0),
                        start: 0,
                        end: 2,
                    }],
                    transitions: vec![Transition {
                        pattern: ph_bits::Ternary::parse("10").unwrap(),
                        next: NextState::State(StateId(1)),
                    }],
                    default: NextState::Accept,
                },
                State {
                    name: "opts".into(),
                    extracts: vec![FieldId(1), FieldId(2)],
                    key: vec![],
                    transitions: vec![],
                    default: NextState::Accept,
                },
            ],
            start: StateId(0),
        }
    }

    #[test]
    fn accepting_paths_cover_both_branches() {
        let spec = varbit_spec();
        let paths = accepting_paths(&spec, 8, 64);
        // start->default-accept and start->opts->accept.
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn seeds_satisfy_their_planted_patterns() {
        let spec = varbit_spec();
        let cfg = FuzzConfig::default();
        let mut rng = Rng::seed_from_u64(7);
        let seeds = seed_packets(&spec, &cfg, &mut rng);
        assert_eq!(seeds.len(), 2);
        // The through-path seed must actually reach the second state.
        let deep = seeds
            .iter()
            .find(|s| s.path == vec![0, 1])
            .expect("deep path seed");
        let r = simulate(&spec, &deep.bits, 16);
        assert_eq!(r.status, ParseStatus::Accept);
        assert_eq!(r.path, vec![0, 1]);
        assert!(r.dict.get(FieldId(2)).is_some());
        // Its control range was recorded for the extreme mutants.
        assert_eq!(deep.control_ranges.len(), 1);
        assert!(!deep.boundaries.is_empty());
    }

    #[test]
    fn mutant_classes_present() {
        let spec = varbit_spec();
        let cfg = FuzzConfig::default();
        let mut rng = Rng::seed_from_u64(7);
        let seeds = seed_packets(&spec, &cfg, &mut rng);
        let deep = seeds.iter().find(|s| s.path == vec![0, 1]).unwrap();
        let ms = mutants(deep, &cfg, &mut rng);
        for class in ["path", "flip", "truncate", "ctrl-extreme", "extend"] {
            assert!(ms.iter().any(|(g, _)| *g == class), "missing {class}");
        }
        // The ctrl-extreme all-ones mutant drives the varbit to its clamp.
        let ones = ms
            .iter()
            .filter(|(g, _)| *g == "ctrl-extreme")
            .map(|(_, m)| simulate(&spec, m, 16))
            .any(|r| r.dict.get(FieldId(1)).is_some_and(|c| c.to_u64() == 0b111));
        assert!(ones, "all-ones control extreme not generated");
    }

    #[test]
    fn ddmin_minimizes_a_divergence() {
        use ph_baseline::translate::direct_translate;
        use ph_hw::DeviceProfile;
        let spec = varbit_spec();
        let mut prog = direct_translate(&spec, &DeviceProfile::tofino());
        // Corrupt: the "10" entry now rejects.
        for st in &mut prog.states {
            for e in &mut st.entries {
                if e.pattern.to_string() == "10" {
                    e.next = ph_hw::HwNext::Reject;
                }
            }
        }
        let report = fuzz(&spec, &[("direct", &prog)], &FuzzConfig::default());
        assert!(!report.clean());
        let d = &report.divergences[0];
        // Minimal witness: `sel = 10**` plus a zero `ctl` (so the varbit
        // takes nothing and both sides finish extraction) — 7 bits.  On
        // anything shorter both sides run out of input and agree.
        assert_eq!(d.input.to_string(), "1000000", "not minimal: {}", d.input);
        assert!(d.shrink_steps > 0);
        assert_eq!(d.kind, DivergenceKind::Status);
        assert!(!d.spec_path.is_empty());
        // Report reproduces.
        assert!(still_diverges(&spec, &prog, &d.input, 64));
    }

    #[test]
    fn clean_program_fuzzes_clean() {
        use ph_baseline::translate::direct_translate;
        use ph_hw::DeviceProfile;
        let spec = varbit_spec();
        let prog = direct_translate(&spec, &DeviceProfile::tofino());
        let report = fuzz(&spec, &[("direct", &prog)], &FuzzConfig::default());
        assert!(report.clean(), "{:?}", report.divergences);
        assert!(report.stats.packets > 10);
    }

    #[test]
    fn divergence_json_shape() {
        let d = Divergence {
            subject: "synth".into(),
            generator: "flip",
            input: BitString::from_u64(0b1010, 4),
            kind: DivergenceKind::Dict,
            spec_status: ParseStatus::Accept,
            impl_status: ParseStatus::Accept,
            spec_path: vec![0, 1],
            impl_path: vec![0, 2],
            first_diff_field: Some("opts".into()),
            shrink_steps: 17,
        };
        let j = Json::parse(&d.to_json().to_string()).unwrap();
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("dict"));
        assert_eq!(j.get("input").and_then(Json::as_str), Some("1010"));
        assert_eq!(j.get("input_bits").and_then(Json::as_i64), Some(4));
        assert_eq!(j.get("shrink_steps").and_then(Json::as_i64), Some(17));
        assert_eq!(
            j.get("first_diff_field").and_then(Json::as_str),
            Some("opts")
        );
        assert_eq!(
            j.get("spec_path").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
    }
}
