//! The CEGIS loop (Fig. 13) with resource-budget descent.
//!
//! One incremental SMT instance holds the skeleton variables, the device's
//! structural constraints, and one simulation-equality constraint per
//! accumulated test case.  Budgets (total TCAM entries for single-table
//! devices, pipeline stages for pipelined ones) are *assumptions*, so the
//! same instance serves the whole minimization descent: each verified
//! candidate tightens the budget and the loop re-enters synthesis; an UNSAT
//! under the tightened assumption proves the previous candidate minimal
//! over this skeleton.
//!
//! Verification is incremental too: a second persistent instance
//! ([`IncrementalVerifier`]) carries the spec-path formula and the symbolic
//! implementation for the whole run, and candidates are pinned onto its
//! free skeleton variables with assumptions — no per-candidate solver
//! construction.

use crate::bounds::{compute_bounds, Bounds};
use crate::encode::encode_impl;
use crate::post;
use crate::reduce::reduce_spec;
use crate::skeleton::{self, build_shape, build_vars, ConcreteSkel, Shape};
use crate::specenc::{encode_spec_paths, mismatch_term};
use crate::validate;
use crate::{OptConfig, RunHists, SynthError, SynthOutput, SynthParams, SynthStats};
use ph_bits::{BitString, Rng};
use ph_hw::DeviceProfile;
use ph_ir::{analysis, NextState, ParseStatus, ParserSpec, StateId};
use ph_obs::Level;
use ph_smt::{Smt, SmtResult, Term};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which skeleton family to synthesize (Opt7.1 races both).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopMode {
    /// Loopy for loopy specs on loop-capable devices, loop-free otherwise.
    Auto,
    /// Force the loop-free (DAG) skeleton.
    LoopFree,
    /// Force the loop-aware skeleton (single-table devices only).
    Loopy,
}

/// Spec-level loop unrolling for devices that cannot revisit entries:
/// duplicates states per depth level up to `depth` and redirects back-edges
/// downward.  Equivalent on every input the bounded verification covers.
pub fn unroll_spec(spec: &ParserSpec, depth: usize) -> ParserSpec {
    let n = spec.states.len();
    let mut out = spec.clone();
    out.states = Vec::with_capacity(n * depth);
    // Level d state i lives at index d*n + i.
    for d in 0..depth {
        for (i, st) in spec.states.iter().enumerate() {
            let mut copy = st.clone();
            copy.name = format!("{}@{d}", st.name);
            let redirect = |nx: NextState| match nx {
                NextState::State(t) if d + 1 < depth => {
                    NextState::State(StateId((d + 1) * n + t.0))
                }
                NextState::State(_) => NextState::Reject, // depth exhausted
                other => other,
            };
            for tr in copy.transitions.iter_mut() {
                tr.next = redirect(tr.next);
            }
            copy.default = redirect(copy.default);
            let _ = i;
            out.states.push(copy);
        }
    }
    out.start = StateId(spec.start.0);
    prune(&out)
}

/// Drops unreachable states (the unrolled product is mostly unreachable).
fn prune(spec: &ParserSpec) -> ParserSpec {
    let reach = analysis::reachable_states(spec);
    let mut map = vec![usize::MAX; spec.states.len()];
    for (new, s) in reach.iter().enumerate() {
        map[s.0] = new;
    }
    let remap = |n: NextState| match n {
        NextState::State(s) => NextState::State(StateId(map[s.0])),
        other => other,
    };
    let states = reach
        .iter()
        .map(|&s| {
            let mut st = spec.state(s).clone();
            for tr in st.transitions.iter_mut() {
                tr.next = remap(tr.next);
            }
            st.default = remap(st.default);
            st
        })
        .collect();
    ParserSpec {
        fields: spec.fields.clone(),
        states,
        start: StateId(map[spec.start.0]),
    }
}

/// Watchdog that trips an interrupt flag at a wall-clock deadline.
struct Watchdog {
    done: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn arm(flag: Arc<AtomicBool>, deadline: Option<Instant>) -> Watchdog {
        let done = Arc::new(AtomicBool::new(false));
        let handle = deadline.map(|dl| {
            let done = done.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    if Instant::now() >= dl {
                        flag.store(true, Ordering::Relaxed);
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            })
        });
        Watchdog { done, handle }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Runs one full synthesis (no Opt7 racing).  `interrupt` cancels the run
/// cooperatively (a losing race branch).
pub fn synthesize_one(
    spec: &ParserSpec,
    device: &DeviceProfile,
    opts: OptConfig,
    params: &SynthParams,
    mode: LoopMode,
    interrupt: Option<Arc<AtomicBool>>,
) -> Result<SynthOutput, SynthError> {
    let _tracer_guard = params
        .tracer
        .as_ref()
        .map(|t| ph_obs::set_thread_tracer(t.clone()));
    let tracer = ph_obs::current();
    let _run_span = tracer.span("synth.run");

    let t0 = Instant::now();
    let flag = interrupt.unwrap_or_else(|| Arc::new(AtomicBool::new(false)));
    let deadline = params.timeout.map(|d| t0 + d);
    let _watchdog = Watchdog::arm(flag.clone(), deadline);

    // Decide the skeleton family and possibly unroll the spec.
    let spec_loopy = !analysis::is_loop_free(spec);
    let loopy = match mode {
        LoopMode::LoopFree => false,
        LoopMode::Loopy => {
            if !device.allows_loops() {
                return Err(SynthError::Unsupported(
                    "loop-aware skeletons need a single-table device".into(),
                ));
            }
            true
        }
        LoopMode::Auto => spec_loopy && device.allows_loops(),
    };
    let working_spec = if spec_loopy && !loopy {
        // Loop-free compilation of a loopy spec: unroll to the configured
        // header-instance budget first (what ParserHawk does internally for
        // the IPU; a pipelined device can only ever support a bounded
        // stack, so correctness is judged against the unrolled spec).
        unroll_spec(spec, params.max_loop_iters)
    } else {
        spec.clone()
    };

    tracer.msg_with(Level::Debug, || {
        format!(
            "synthesis starts: {} spec states, loopy={loopy}",
            working_spec.states.len()
        )
    });
    let reduced = {
        let _s = tracer.span("synth.reduce");
        reduce_spec(&working_spec, opts).map_err(SynthError::Unsupported)?
    };
    let bounds =
        compute_bounds(&reduced.spec, params.max_loop_iters).map_err(SynthError::Unsupported)?;
    let shape = {
        let _s = tracer.span("synth.skeleton");
        build_shape(&reduced, device, opts, loopy, params.spare_states)
            .map_err(SynthError::Unsupported)?
    };

    // Portfolio width for hard SAT queries.  `OptConfig::portfolio` is the
    // feature gate; an explicit `SynthParams::portfolio_width` wins (the Opt7
    // race sets it to its per-branch core share), otherwise every available
    // core is offered and the solver's own hardness gate plus the
    // single-core clamp decide whether a race ever actually starts.
    let portfolio_width = if !opts.portfolio {
        1
    } else {
        params.portfolio_width.unwrap_or_else(|| {
            params.portfolio_cores.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
        })
    };

    // Candidate batch width for the CEGIS loop (see
    // `effective_batch_width`): how many diverse candidates each synth
    // solver call is milked for before verification.
    let batch_width = effective_batch_width(opts, params);

    run_cegis(
        &working_spec,
        &reduced.spec,
        &shape,
        device,
        params,
        bounds,
        portfolio_width,
        batch_width,
        flag,
        t0,
    )
}

/// Auto-width cap for batched CEGIS: diminishing returns past a few
/// candidates (later blocking clauses make the re-checks harder and the
/// counterexamples more redundant), so auto mode never goes wider.
const MAX_AUTO_BATCH: usize = 4;

/// Effective candidate batch width for one run.  [`OptConfig::batch`] is
/// the feature gate; an explicit [`SynthParams::batch_width`] wins (the
/// Opt7 race sets it to its per-branch core share), otherwise
/// `min(cores, 4)` with a single-core clamp to the exact sequential loop —
/// the same shape as the portfolio clamp.  `PH_BATCH` in the environment
/// overrides everything: `PH_BATCH=0` is the kill switch and `PH_BATCH=k`
/// forces width `k` even on one core (piercing the clamp, like
/// `PH_PORTFOLIO`).
pub(crate) fn effective_batch_width(opts: OptConfig, params: &SynthParams) -> usize {
    if let Some(k) = std::env::var("PH_BATCH")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        return k.max(1);
    }
    if !opts.batch {
        return 1;
    }
    if let Some(k) = params.batch_width {
        return k.max(1);
    }
    let cores = params.portfolio_cores.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    if cores < 2 {
        1
    } else {
        cores.min(MAX_AUTO_BATCH)
    }
}

/// Rolls the per-solver portfolio counters up into the run-level stats.
/// Called wherever `synth_sat`/`verify_sat` snapshots are taken so every
/// exit path reports them.
fn fill_portfolio_counters(stats: &mut SynthStats) {
    stats.portfolio_races = stats.synth_sat.portfolio_solves + stats.verify_sat.portfolio_solves;
    stats.portfolio_clauses_imported =
        stats.synth_sat.portfolio_imported + stats.verify_sat.portfolio_imported;
}

#[allow(clippy::too_many_arguments)]
fn run_cegis(
    orig_spec: &ParserSpec,
    red_spec: &ParserSpec,
    shape: &Shape,
    device: &DeviceProfile,
    params: &SynthParams,
    bounds: Bounds,
    portfolio_width: usize,
    batch_width: usize,
    flag: Arc<AtomicBool>,
    t0: Instant,
) -> Result<SynthOutput, SynthError> {
    let tracer = ph_obs::current();
    let mut stats = SynthStats::default();
    let mut rng = Rng::seed_from_u64(params.seed);
    let l = bounds.input_bits.max(1);
    let k_impl = shape_k(shape, &bounds);
    let k_spec = bounds.spec_iters + 1;

    let mut smt = Smt::new();
    smt.set_interrupt(Some(flag.clone()));
    smt.set_simplify(params.simplify);
    smt.set_portfolio_width(portfolio_width);
    smt.set_portfolio_cores(params.portfolio_cores);
    let vars = build_vars(&mut smt, shape, device);
    stats.search_space_bits = vars.search_space_bits;
    tracer.gauge("cegis.search_space_bits", vars.search_space_bits as u64);

    // Concurrent verifiers split the portfolio's core budget the same way
    // the Opt7 race splits cores across branches: each of up to
    // `batch_width` verifiers gets an equal share, the synth solver keeps
    // the full width (it runs alone in its phase).
    let verifier_width = if batch_width >= 2 {
        (portfolio_width / batch_width).max(1)
    } else {
        portfolio_width
    };

    // Persistent verification engine: the spec-path formula and the symbolic
    // implementation are encoded exactly once; every candidate (and every
    // shrink_masks trial) is checked under assumptions against this one
    // instance.  Batched rounds verify on a pool of these — member 0 is
    // built now, siblings lazily on the first round that needs them.
    let tv = Instant::now();
    let mut pool: Vec<IncrementalVerifier> = Vec::with_capacity(batch_width);
    let build_verifier = |stats: &mut SynthStats| -> Result<IncrementalVerifier, SynthError> {
        let mut v = IncrementalVerifier::new(shape, red_spec, l, k_impl, k_spec, &flag)?;
        v.set_simplify(params.simplify);
        v.set_portfolio_width(verifier_width);
        v.set_portfolio_cores(params.portfolio_cores);
        stats.verify_solver_builds += 1;
        Ok(v)
    };
    pool.push(build_verifier(&mut stats)?);
    stats.verify_time += tv.elapsed();

    // Initial test cases: all-zeros plus two random inputs.
    let add_test = |smt: &mut Smt, input: &BitString, stats: &mut SynthStats| {
        let expect = ph_ir::simulate(red_spec, input, k_spec + 2);
        debug_assert!(expect.status != ParseStatus::IterationBudget);
        let it = smt.const_bits(input.clone());
        let out = encode_impl(smt, shape, &vars.terms, it, k_impl);
        let sbits = shape.state_bits();
        let want = smt.const_u64(
            match expect.status {
                ParseStatus::Accept => shape.accept_code() as u64,
                ParseStatus::Reject => shape.reject_code() as u64,
                _ => shape.ooi_code() as u64,
            },
            sbits,
        );
        let c = smt.eq(out.status, want);
        smt.assert(c);
        for (f, w) in shape.field_widths.iter().enumerate() {
            match expect.dict.get(ph_ir::FieldId(f)) {
                Some(v) => {
                    smt.assert(out.defined[f]);
                    debug_assert_eq!(v.len(), (*w).max(1));
                    let vc = smt.const_bits(v.clone());
                    let c = smt.eq(out.values[f], vc);
                    smt.assert(c);
                }
                None => {
                    let nd = smt.not(out.defined[f]);
                    smt.assert(nd);
                }
            }
        }
        stats.test_cases += 1;
    };

    let mut initial = vec![BitString::zeros(l)];
    for _ in 0..2 {
        let mut b = BitString::zeros(l);
        for i in 0..l {
            b.set(i, rng.gen_bool(0.5));
        }
        initial.push(b);
    }
    // Every test ever encoded, for counterexample dedup: within a batch
    // several candidates can fail on the same input, and `add_test`
    // re-encodes the full `encode_impl` unrolling per test, so duplicates
    // are worth dropping before they reach the solver.
    let mut seen_tests: HashSet<BitString> = HashSet::new();
    for t in &initial {
        add_test(&mut smt, t, &mut stats);
        seen_tests.insert(t.clone());
    }

    // Budget descent: single-table devices minimize total TCAM entries;
    // pipelined devices minimize stages first, then entries with the stage
    // count pinned (the Table 3 quality metrics).
    let single_table = device.arch == ph_hw::Arch::SingleTable;
    #[derive(PartialEq)]
    enum MinPhase {
        Stages,
        Entries,
    }
    let mut phase = if single_table {
        MinPhase::Entries
    } else {
        MinPhase::Stages
    };
    let mut stage_cap: Option<u64> = None;
    let mut entry_cap: Option<u64> = None;
    let mut best: Option<ConcreteSkel> = None;

    // The descent + shrink proper (setup above is accounted under
    // `synth.run` / `verify.encode`).  The `cegis.synth` / `cegis.verify` /
    // `cegis.shrink` child spans are arranged to cover this span's wall
    // time to within ~1%: everything else inside it is loop control.
    let run_span = tracer.span("cegis.run");

    'outer: loop {
        stats.budget_levels += 1;
        tracer.msg_with(Level::Debug, || {
            format!(
                "budget level {} (stage cap {stage_cap:?}, entry cap {entry_cap:?})",
                stats.budget_levels
            )
        });
        let assumptions: Vec<Term> = {
            let _s = tracer.span("cegis.assume");
            let mut assumptions = Vec::new();
            if let Some(b) = stage_cap {
                let stages = vars.stage.as_ref().expect("pipelined device has stages");
                let stb = smt.width(stages[0]);
                let bc = smt.const_u64(b, stb);
                for &s in stages.iter() {
                    assumptions.push(smt.ule(s, bc));
                }
            }
            if let Some(b) = entry_cap {
                let bc = smt.const_u64(b, vars.count_bits);
                assumptions.push(smt.ule(vars.active_count, bc));
            }
            assumptions
        };

        // Inner CEGIS at this budget.
        for _iter in 0..params.max_cegis_iters {
            if flag.load(Ordering::Relaxed) {
                tracer.msg(Level::Debug, "interrupted mid-descent");
                stats.wall = t0.elapsed();
                stats.synth_sat = smt.solver_stats();
                stats.verify_sat = pooled_verify_stats(&pool);
                fill_portfolio_counters(&mut stats);
                return finish_or_timeout(best, shape, orig_spec, device, params, stats);
            }
            stats.cegis_iterations += 1;
            let _iter_span = tracer.span("cegis.iter");
            let ts = Instant::now();
            // The synth phase covers model extraction — and, when batching,
            // the diversity harvest — so the span (and synth_time) is the
            // full synthesis-side cost.
            let (synth_result, mut batch) = {
                let _s = tracer.span("cegis.synth");
                let r = smt.check_assuming(&assumptions);
                let mut batch: Vec<ConcreteSkel> = Vec::new();
                if r == SmtResult::Sat {
                    batch.push(skeleton::extract_model(&mut smt, shape, &vars));
                    if batch_width >= 2 {
                        harvest_batch(
                            &mut smt,
                            shape,
                            &vars,
                            &assumptions,
                            batch_width,
                            &flag,
                            &mut batch,
                            &mut stats,
                            &tracer,
                        );
                    }
                }
                (r, batch)
            };
            let dt = ts.elapsed();
            stats.synth_time += dt;
            stats.hists.synth_query_ns.record(dt.as_nanos() as u64);
            match synth_result {
                SmtResult::Unsat => {
                    let Some(b) = &best else {
                        return Err(SynthError::Infeasible(
                            "no implementation within the device's resources for this skeleton"
                                .into(),
                        ));
                    };
                    if phase == MinPhase::Stages {
                        // Stage count is minimal; pin it and minimize
                        // entries next.
                        phase = MinPhase::Entries;
                        stage_cap = Some(skeleton::stages_used(b) as u64 - 1);
                        entry_cap = Some(skeleton::entry_count(b) as u64 - 1);
                        continue 'outer;
                    }
                    break 'outer; // entry descent complete
                }
                SmtResult::Unknown => {
                    break 'outer; // interrupted / budget exhausted
                }
                SmtResult::Sat => {}
            }

            // Verification phase: one incremental check per candidate
            // (concurrent when the batch has siblings), plus encoding every
            // distinct counterexample as a new test case — the span (and
            // verify_time) is the full verification-side cost.
            let tv = Instant::now();
            let vspan = tracer.span("cegis.verify");
            while pool.len() < batch.len() {
                pool.push(build_verifier(&mut stats)?);
            }
            let outcomes = verify_batch(&mut pool[..batch.len()], &batch, &tracer);
            // Outcomes are processed strictly in candidate order so thread
            // completion order never influences anything observable.
            let stages_phase = phase == MinPhase::Stages;
            let metric = |c: &ConcreteSkel| -> (u64, u64) {
                if stages_phase {
                    (
                        skeleton::stages_used(c) as u64,
                        skeleton::entry_count(c) as u64,
                    )
                } else {
                    (skeleton::entry_count(c) as u64, 0)
                }
            };
            let mut best_verified: Option<usize> = None;
            let mut unknown = false;
            for (i, o) in outcomes.iter().enumerate() {
                stats.verify_checks += 1;
                if let Verdict::Counterexample(cex) = &o.verdict {
                    stats.counterexamples += 1;
                    tracer.count("cegis.cex", 1);
                    if seen_tests.insert(cex.clone()) {
                        add_test(&mut smt, cex, &mut stats);
                        if i > 0 {
                            stats.batch_cex_harvested += 1;
                            tracer.count("cegis.batch.cex", 1);
                        }
                    } else {
                        stats.cex_dup_dropped += 1;
                        tracer.count("cegis.batch.dup_dropped", 1);
                    }
                }
                stats.hists.merge(&o.hists);
                // Per-query solver effort: the delta this one check cost.
                stats.max_verify_conflicts = stats.max_verify_conflicts.max(o.delta.conflicts);
                if tracer.enabled() {
                    tracer.count("verify.conflicts", o.delta.conflicts);
                    tracer.count("verify.decisions", o.delta.decisions);
                    tracer.count("verify.propagations", o.delta.propagations);
                    tracer.record("verify.conflicts", o.delta.conflicts);
                }
                match o.verdict {
                    Verdict::Unknown => unknown = true,
                    Verdict::Verified => {
                        tracer.count("cegis.verified", 1);
                        let better =
                            best_verified.is_none_or(|b| metric(&batch[i]) < metric(&batch[b]));
                        if better {
                            best_verified = Some(i);
                        }
                    }
                    Verdict::Counterexample(_) => {}
                }
            }
            drop(vspan);
            stats.verify_time += tv.elapsed();

            // Decision, sequential semantics: a verified candidate (the
            // best by the active budget metric when several verify)
            // tightens the budget; an Unknown aborts; otherwise the loop
            // re-enters synthesis with the new tests.
            if let Some(i) = best_verified {
                let candidate = batch.swap_remove(i);
                match phase {
                    MinPhase::Stages => {
                        let used = skeleton::stages_used(&candidate) as u64;
                        let entries = skeleton::entry_count(&candidate) as u64;
                        best = Some(candidate);
                        if used <= 1 {
                            phase = MinPhase::Entries;
                            stage_cap = Some(0);
                            entry_cap = Some(entries.saturating_sub(1));
                        } else {
                            stage_cap = Some(used - 2);
                        }
                    }
                    MinPhase::Entries => {
                        let used = skeleton::entry_count(&candidate) as u64;
                        best = Some(candidate);
                        if used == 0 {
                            break 'outer;
                        }
                        entry_cap = Some(used - 1);
                    }
                }
                continue 'outer;
            }
            if unknown {
                break 'outer;
            }
        }
        // CEGIS iteration cap hit at this budget: settle for what we have.
        break;
    }

    // Mask shrinking: clearing an entry's mask turns it into a catch-all,
    // which lets the post-synthesis chain merger absorb trivial states.
    // Each proposal is re-verified symbolically, so the pass is sound.
    if let Some(conc) = best.take() {
        best = Some(shrink_masks(shape, &mut pool[0], conc, &flag, &mut stats));
    }
    drop(run_span);

    stats.wall = t0.elapsed();
    stats.synth_sat = smt.solver_stats();
    stats.verify_sat = pooled_verify_stats(&pool);
    fill_portfolio_counters(&mut stats);
    tracer.msg_with(Level::Info, || {
        format!(
            "cegis done: {} iterations, {} test cases, {} budget levels in {:.3}s",
            stats.cegis_iterations,
            stats.test_cases,
            stats.budget_levels,
            stats.wall.as_secs_f64()
        )
    });
    finish_or_timeout(best, shape, orig_spec, device, params, stats)
}

/// Harvests up to `batch_width - 1` additional *diverse* candidates from
/// the synth solver after a Sat verdict: pushes one scope, and repeatedly
/// blocks the last model over its semantic decision terms
/// ([`Smt::block_model`]) and re-checks under the same budget assumptions.
/// The scope is popped when the batch is full (or the solver runs dry), so
/// the blocking clauses never leak into later budget levels.
#[allow(clippy::too_many_arguments)]
fn harvest_batch(
    smt: &mut Smt,
    shape: &Shape,
    vars: &skeleton::SkelVars,
    assumptions: &[Term],
    batch_width: usize,
    flag: &Arc<AtomicBool>,
    batch: &mut Vec<ConcreteSkel>,
    stats: &mut SynthStats,
    tracer: &ph_obs::Tracer,
) {
    let _s = tracer.span("cegis.batch");
    stats.batch_rounds += 1;
    tracer.count("cegis.batch.rounds", 1);
    smt.push();
    while batch.len() < batch_width && !flag.load(Ordering::Relaxed) {
        let last = batch.last().expect("harvest starts with one candidate");
        let blockers = blocking_terms(smt, &vars.terms, last);
        smt.block_model(&blockers);
        if smt.check_assuming(assumptions) != SmtResult::Sat {
            break;
        }
        batch.push(skeleton::extract_model(smt, shape, vars));
    }
    smt.pop();
    stats.batch_candidates += batch.len() as u64;
    tracer.count("cegis.batch.candidates", batch.len() as u64);
}

/// The semantic decision terms of one extracted candidate, for
/// [`Smt::block_model`]: every key-allocation bit and extraction selector,
/// every entry's active flag, and — for the candidate's active (prefix)
/// entries — the *masked* value, the mask and the next-state code.
/// Blocking the masked value rather than the raw value stops the solver
/// from "diversifying" into don't-care value bits under a cleared mask
/// bit; inactive entries' contents are skipped for the same reason.  Any
/// model evading all these blocks therefore decodes to a genuinely
/// different [`ConcreteSkel`].
fn blocking_terms(smt: &mut Smt, terms: &skeleton::SkelTerms, cand: &ConcreteSkel) -> Vec<Term> {
    let mut out = Vec::new();
    for row in &terms.alloc {
        out.extend(row.iter().copied());
    }
    out.extend(terms.ext_sel.iter().copied());
    for (s, row) in terms.entries.iter().enumerate() {
        let active = cand.entries.get(s).map_or(0, Vec::len);
        for (j, e) in row.iter().enumerate() {
            out.push(e.active);
            if j < active {
                let masked = smt.and(e.value, e.mask);
                out.push(masked);
                out.push(e.mask);
                out.push(e.next);
            }
        }
    }
    out
}

/// One candidate's verification result plus the measurements its worker
/// took on its own thread.
struct VerifyOutcome {
    verdict: Verdict,
    /// Per-query solver effort (stats delta around the check).
    delta: ph_sat::SolverStats,
    /// Thread-local latency/conflict histograms, merged into
    /// [`SynthStats::hists`] by the caller in candidate order so the
    /// batched loop keeps per-candidate tail latencies.
    hists: RunHists,
}

/// Verifies one batch: candidate `i` runs on verifier `i`, concurrently
/// under [`std::thread::scope`] when the batch has siblings.  Workers
/// inherit the caller's tracer (their `smt.check` spans land in the shared
/// sink like the Opt7 race branches' do); all result processing stays with
/// the caller.
fn verify_batch(
    pool: &mut [IncrementalVerifier<'_>],
    batch: &[ConcreteSkel],
    tracer: &ph_obs::Tracer,
) -> Vec<VerifyOutcome> {
    debug_assert_eq!(pool.len(), batch.len());
    if batch.len() == 1 {
        return vec![verify_one(&mut pool[0], &batch[0])];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = pool
            .iter_mut()
            .zip(batch.iter())
            .map(|(v, cand)| {
                let tracer = tracer.clone();
                s.spawn(move || {
                    let _g = ph_obs::set_thread_tracer(tracer);
                    verify_one(v, cand)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("verifier thread panicked"))
            .collect()
    })
}

/// One incremental candidate check with its own measurements.
fn verify_one(v: &mut IncrementalVerifier<'_>, cand: &ConcreteSkel) -> VerifyOutcome {
    let t = Instant::now();
    let before = v.solver_stats();
    let verdict = v.verify(cand);
    let query: Duration = t.elapsed();
    let delta = v.solver_stats().delta_since(before);
    let mut hists = RunHists::default();
    hists.verify_query_ns.record(query.as_nanos() as u64);
    hists.verify_conflicts.record(delta.conflicts);
    VerifyOutcome {
        verdict,
        delta,
        hists,
    }
}

/// Field-wise sum of the verifier pool's cumulative solver statistics —
/// the run-level `verify_sat` when batched rounds spread queries across
/// several persistent engines.  A pool of one reports exactly the
/// sequential numbers.
fn pooled_verify_stats(pool: &[IncrementalVerifier<'_>]) -> ph_sat::SolverStats {
    let mut out = ph_sat::SolverStats::default();
    for v in pool {
        let s = v.solver_stats();
        out.conflicts += s.conflicts;
        out.decisions += s.decisions;
        out.propagations += s.propagations;
        out.restarts += s.restarts;
        out.learnts += s.learnts;
        out.clauses_added += s.clauses_added;
        out.eliminated_vars += s.eliminated_vars;
        out.subsumed_clauses += s.subsumed_clauses;
        out.strengthened_clauses += s.strengthened_clauses;
        out.failed_literals += s.failed_literals;
        out.simplify_time_ns += s.simplify_time_ns;
        out.portfolio_solves += s.portfolio_solves;
        out.portfolio_imported += s.portfolio_imported;
        out.arena_gcs += s.arena_gcs;
        // A level, not a counter: the pool's live arena footprint is the
        // sum over its engines.
        out.arena_bytes += s.arena_bytes;
    }
    out
}

/// Outcome of one symbolic verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No input distinguishes the candidate from the spec.
    Verified,
    /// A witness input on which candidate and spec disagree.
    Counterexample(BitString),
    /// Interrupted or out of budget.
    Unknown,
}

/// Persistent verification engine.
///
/// The spec-path mismatch formula (φ_spec) and the symbolic implementation
/// are encoded once over *free* skeleton variables; each candidate is
/// checked by pinning those variables with equality assumptions
/// ([`Smt::check_assuming`]).  The CDCL solver keeps its clause database,
/// variable activities and learned lemmas across queries, and the
/// bit-blaster's term cache means repeated pins (identical entries across
/// candidates, `shrink_masks` trials) cost nothing to re-encode.  This
/// drops verification solver constructions from O(candidates + entries) to
/// exactly one per synthesis run.
pub struct IncrementalVerifier<'a> {
    shape: &'a Shape,
    smt: Smt,
    input: Term,
    skel: skeleton::SkelTerms,
}

impl<'a> IncrementalVerifier<'a> {
    /// Encodes the verification formula once.
    ///
    /// # Errors
    ///
    /// Propagates unsupported-spec errors from the path enumeration.
    pub fn new(
        shape: &'a Shape,
        red_spec: &ParserSpec,
        l: usize,
        k_impl: usize,
        k_spec: usize,
        flag: &Arc<AtomicBool>,
    ) -> Result<Self, SynthError> {
        let tracer = ph_obs::current();
        let _s = tracer.span("verify.encode");
        let mut smt = Smt::new();
        smt.set_interrupt(Some(flag.clone()));
        let input = smt.var("I", l as u32);
        // Counterexamples are read off `input` after every SAT verdict, so
        // its bits must survive CNF simplification.  Blasting any term
        // freezes its cached literals; forcing it here (rather than relying
        // on `encode_impl` reaching it) makes the contract explicit.
        smt.freeze_term(input);
        let skel = skeleton::build_verifier_terms(&mut smt, shape);
        let out = encode_impl(&mut smt, shape, &skel, input, k_impl);
        let paths = encode_spec_paths(&mut smt, red_spec, input, k_spec + 2, 1 << 16)
            .map_err(SynthError::Unsupported)?;
        let bad = mismatch_term(
            &mut smt,
            &paths,
            input,
            out.status,
            &out.defined,
            &out.values,
            shape.accept_code() as u64,
            shape.reject_code() as u64,
            shape.ooi_code() as u64,
        );
        smt.assert(bad);
        tracer.gauge("verify.encode.sat_vars", smt.num_sat_vars() as u64);
        tracer.gauge("verify.encode.terms", smt.num_terms() as u64);
        Ok(IncrementalVerifier {
            shape,
            smt,
            input,
            skel,
        })
    }

    /// The persistent verification solver's cumulative search statistics;
    /// snapshot around [`IncrementalVerifier::verify`] and use
    /// [`ph_sat::SolverStats::delta_since`] for the per-query cost.
    pub fn solver_stats(&self) -> ph_sat::SolverStats {
        self.smt.solver_stats()
    }

    /// Enables or disables CNF simplification in the underlying solver
    /// (safe either way: the blaster freezes all externally visible
    /// literals).
    pub fn set_simplify(&mut self, on: bool) {
        self.smt.set_simplify(on);
    }

    /// Sets the portfolio race width for hard verification queries (see
    /// [`ph_smt::Smt::set_portfolio_width`]; `0`/`1` keep the solver
    /// sequential).
    pub fn set_portfolio_width(&mut self, width: usize) {
        self.smt.set_portfolio_width(width);
    }

    /// Overrides the detected core count for the portfolio clamp (testing
    /// hook; `None` restores autodetection).
    #[doc(hidden)]
    pub fn set_portfolio_cores(&mut self, cores: Option<usize>) {
        self.smt.set_portfolio_cores(cores);
    }

    /// Checks one candidate: UNSAT under the pin assumptions means no input
    /// distinguishes it from the spec.
    pub fn verify(&mut self, candidate: &ConcreteSkel) -> Verdict {
        let pins = skeleton::pin_candidate(&mut self.smt, self.shape, &self.skel, candidate);
        match self.smt.check_assuming(&pins) {
            SmtResult::Unsat => Verdict::Verified,
            SmtResult::Sat => Verdict::Counterexample(self.smt.model_value(self.input)),
            SmtResult::Unknown => Verdict::Unknown,
        }
    }
}

/// Checks a concrete skeleton against every spec path symbolically using a
/// fresh solver with the skeleton baked in as constants — the
/// pre-incremental path, kept as the differential-testing oracle for
/// [`IncrementalVerifier`] and for benchmarking the rebuild cost.
pub fn verify_candidate_fresh(
    shape: &Shape,
    red_spec: &ParserSpec,
    candidate: &ConcreteSkel,
    l: usize,
    k_impl: usize,
    k_spec: usize,
    flag: &Arc<AtomicBool>,
) -> Result<Verdict, SynthError> {
    let mut vsmt = Smt::new();
    vsmt.set_interrupt(Some(flag.clone()));
    // This path is the differential-testing oracle for the incremental
    // (and simplifying) engine, so it deliberately runs the plain solver.
    vsmt.set_simplify(false);
    let input = vsmt.var("I", l as u32);
    let terms = skeleton::concrete_terms(&mut vsmt, shape, candidate);
    let out = encode_impl(&mut vsmt, shape, &terms, input, k_impl);
    let paths = encode_spec_paths(&mut vsmt, red_spec, input, k_spec + 2, 1 << 16)
        .map_err(SynthError::Unsupported)?;
    let bad = mismatch_term(
        &mut vsmt,
        &paths,
        input,
        out.status,
        &out.defined,
        &out.values,
        shape.accept_code() as u64,
        shape.reject_code() as u64,
        shape.ooi_code() as u64,
    );
    vsmt.assert(bad);
    Ok(match vsmt.check() {
        SmtResult::Unsat => Verdict::Verified,
        SmtResult::Sat => Verdict::Counterexample(vsmt.model_value(input)),
        SmtResult::Unknown => Verdict::Unknown,
    })
}

/// Tries to clear each entry's mask (making it a catch-all), keeping each
/// change only when the program still verifies.  Every trial is one
/// incremental assumption check against the persistent verifier.
fn shrink_masks(
    shape: &Shape,
    verifier: &mut IncrementalVerifier<'_>,
    mut conc: ConcreteSkel,
    flag: &Arc<AtomicBool>,
    stats: &mut SynthStats,
) -> ConcreteSkel {
    let tracer = ph_obs::current();
    let _span = tracer.span("cegis.shrink");
    for s in 0..conc.entries.len() {
        for j in 0..conc.entries[s].len() {
            if conc.entries[s][j].mask.count_ones() == 0 {
                continue;
            }
            if flag.load(Ordering::Relaxed) {
                return conc;
            }
            let mut trial = conc.clone();
            trial.entries[s][j].mask = BitString::zeros(shape.canon_width);
            trial.entries[s][j].value = BitString::zeros(shape.canon_width);
            let tv = Instant::now();
            let sat_before = verifier.solver_stats();
            let verdict = verifier.verify(&trial);
            stats.verify_checks += 1;
            stats.shrink_trials += 1;
            let dt = tv.elapsed();
            stats.shrink_time += dt;
            stats.hists.shrink_query_ns.record(dt.as_nanos() as u64);
            tracer.count("shrink.trials", 1);
            if tracer.enabled() {
                let d = verifier.solver_stats().delta_since(sat_before);
                tracer.count("shrink.conflicts", d.conflicts);
            }
            if verdict == Verdict::Verified {
                stats.shrink_accepted += 1;
                tracer.count("shrink.accepted", 1);
                conc = trial;
            }
        }
    }
    conc
}

/// Unrolling depth for the implementation machine.
pub fn shape_k(shape: &Shape, bounds: &Bounds) -> usize {
    if shape.loopy {
        // One slot visit per extraction run: spec visits x runs-per-visit,
        // plus the entry state and the final transition.
        (bounds.spec_iters * shape.max_runs_per_state.max(1) + 2).min(bounds.impl_iters.max(3))
    } else {
        // A DAG machine visits each state at most once.
        shape.state_count() + 1
    }
}

fn finish_or_timeout(
    best: Option<ConcreteSkel>,
    shape: &Shape,
    orig_spec: &ParserSpec,
    device: &DeviceProfile,
    params: &SynthParams,
    stats: SynthStats,
) -> Result<SynthOutput, SynthError> {
    let Some(conc) = best else {
        return Err(SynthError::Timeout(Box::new(stats)));
    };
    let mut program = skeleton::to_program(shape, &conc, device);
    post::optimize(&mut program, device, &orig_spec.fields);
    validate::check_program_against_spec(orig_spec, &program, params.seed, 400)
        .map_err(SynthError::ValidationFailed)?;
    if params.e2e_samples > 0 {
        crate::fuzz::check_e2e(orig_spec, &program, params.seed, params.e2e_samples).map_err(
            |d| SynthError::ValidationFailed(format!("fuzz oracle divergence: {}", d.to_json())),
        )?;
    }
    let violations = ph_hw::check_program(&program, &orig_spec.fields);
    if !violations.is_empty() {
        return Err(SynthError::Infeasible(
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        ));
    }
    Ok(SynthOutput { program, stats })
}
