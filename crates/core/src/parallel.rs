//! Opt7: parallel synthesis racing (§6.7).
//!
//! For loop-free specifications on single-table devices, a loop-aware and a
//! loop-free skeleton are raced on separate threads (Fig. 20); the first
//! verified result wins and the loser is interrupted.  When both complete,
//! the better one (fewer entries) is kept — this mirrors the paper's
//! "solve sub-problems on a server pool, halt as soon as one yields a valid
//! outcome" strategy scaled to one machine with `crossbeam` scoped threads.

use crate::cegis::{synthesize_one, LoopMode};
use crate::{OptConfig, SynthError, SynthOutput, SynthParams};
use ph_hw::DeviceProfile;
use ph_ir::{analysis, ParserSpec};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Synthesizes with Opt7 racing enabled.
pub fn synthesize_racing(
    spec: &ParserSpec,
    device: &DeviceProfile,
    opts: OptConfig,
    params: &SynthParams,
) -> Result<SynthOutput, SynthError> {
    let spec_loopy = !analysis::is_loop_free(spec);

    // Racing is useful when both skeleton families apply: single-table
    // device and a loop-free spec (Fig. 20's setting).  Otherwise there is
    // exactly one sensible family.
    if !device.allows_loops() {
        return synthesize_one(spec, device, opts, params, LoopMode::LoopFree, None);
    }
    if spec_loopy {
        return synthesize_one(spec, device, opts, params, LoopMode::Loopy, None);
    }
    // The paper's server pool assigns one core per sub-problem; on a
    // single-core machine racing only multiplies work, so fall back to the
    // loop-free skeleton (the natural fit for a loop-free spec).
    if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) < 2 {
        return synthesize_one(spec, device, opts, params, LoopMode::LoopFree, None);
    }

    let flag_free = Arc::new(AtomicBool::new(false));
    let flag_loopy = Arc::new(AtomicBool::new(false));

    let (free, loopy) = crossbeam::thread::scope(|scope| {
        let h_free = {
            let f = flag_free.clone();
            scope.spawn(move |_| {
                synthesize_one(spec, device, opts, params, LoopMode::LoopFree, Some(f))
            })
        };
        let h_loopy = {
            let f = flag_loopy.clone();
            scope.spawn(move |_| {
                synthesize_one(spec, device, opts, params, LoopMode::Loopy, Some(f))
            })
        };
        // Join both; each has its own watchdog for the shared wall budget.
        // (A finer implementation would interrupt the loser on first
        // success; joining keeps the better of the two results, which is
        // what the quality numbers in Table 3 report.)
        let free = h_free.join().expect("loop-free worker panicked");
        let loopy = h_loopy.join().expect("loopy worker panicked");
        (free, loopy)
    })
    .expect("crossbeam scope");

    match (free, loopy) {
        (Ok(a), Ok(b)) => {
            // Prefer fewer entries; tie-break on fewer states.
            let (ua, ub) = (a.program.usage(), b.program.usage());
            if (ub.tcam_entries, ub.states) < (ua.tcam_entries, ua.states) {
                Ok(b)
            } else {
                Ok(a)
            }
        }
        (Ok(a), Err(_)) => Ok(a),
        (Err(_), Ok(b)) => Ok(b),
        (Err(a), Err(_)) => Err(a),
    }
}
