//! Opt7: parallel synthesis racing (§6.7).
//!
//! For loop-free specifications on single-table devices, a loop-aware and a
//! loop-free skeleton are raced on separate threads (Fig. 20).  The race is
//! first-win: the first branch to produce a verified result trips the other
//! branch's interrupt flag, and the interrupted loser returns its
//! best-so-far candidate (or a timeout) instead of running to completion —
//! mirroring the paper's "solve sub-problems on a server pool, halt as soon
//! as one yields a valid outcome" strategy scaled to one machine with
//! `std::thread::scope`.  When both branches end up with results (the loser
//! may already have had one when interrupted), the better one (fewer
//! entries, then fewer states) is kept.

use crate::cegis::{synthesize_one, LoopMode};
use crate::{OptConfig, SynthError, SynthOutput, SynthParams};
use ph_hw::DeviceProfile;
use ph_ir::{analysis, ParserSpec};
use ph_obs::Level;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Synthesizes with Opt7 racing enabled.
pub fn synthesize_racing(
    spec: &ParserSpec,
    device: &DeviceProfile,
    opts: OptConfig,
    params: &SynthParams,
) -> Result<SynthOutput, SynthError> {
    let spec_loopy = !analysis::is_loop_free(spec);

    // Racing is useful when both skeleton families apply: single-table
    // device and a loop-free spec (Fig. 20's setting).  Otherwise there is
    // exactly one sensible family.
    if !device.allows_loops() {
        return synthesize_one(spec, device, opts, params, LoopMode::LoopFree, None);
    }
    if spec_loopy {
        return synthesize_one(spec, device, opts, params, LoopMode::Loopy, None);
    }
    // The paper's server pool assigns one core per sub-problem; on a
    // single-core machine racing only multiplies work, so fall back to the
    // loop-free skeleton (the natural fit for a loop-free spec).
    let cores = params.portfolio_cores.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    if cores < 2 {
        return synthesize_one(spec, device, opts, params, LoopMode::LoopFree, None);
    }

    // Core-budget split against the SAT portfolio: the two race branches
    // divide the machine, so each branch's portfolio (if it wasn't sized
    // explicitly) gets half the cores.  With 2–3 cores that yields width 1,
    // i.e. the portfolio stays off while Opt7 is racing — the race itself
    // is the parallelism.
    let branch_portfolio_width = params.portfolio_width.unwrap_or_else(|| (cores / 2).max(1));

    // Batched CEGIS splits the same halved core budget: each branch's
    // candidate batch (if it wasn't sized explicitly) gets the branch's
    // core share, with the auto clamp keeping 2–3-core machines on the
    // sequential loop inside each branch.
    let branch_batch_width = params.batch_width.unwrap_or_else(|| {
        let share = (cores / 2).max(1);
        if share < 2 {
            1
        } else {
            share.min(4)
        }
    });

    let flag_free = Arc::new(AtomicBool::new(false));
    let flag_loopy = Arc::new(AtomicBool::new(false));

    // The race tracer: the run-scoped one when set, else the ambient one.
    // Each branch derives a tagged stream from it, so one shared sink keeps
    // the winner/loser breakdown distinguishable.
    let base_tracer = params.tracer.clone().unwrap_or_else(ph_obs::current);
    let race_span = base_tracer.span("race.run");

    // Run one branch per thread; as soon as a branch verifies a result it
    // trips the other branch's interrupt flag.  The interrupted branch
    // notices at its next solver conflict / loop check and returns its own
    // best-so-far (possibly a timeout), so both joins stay cheap.
    let race =
        |mode: LoopMode, mine: Arc<AtomicBool>, other: Arc<AtomicBool>, branch: &'static str| {
            let branch_tracer = base_tracer.with_branch(branch);
            move || {
                // Install the branch stream for this worker thread; everything
                // under synthesize_one (cegis, smt) inherits it.
                let mut branch_params = params.clone();
                branch_params.tracer = Some(branch_tracer.clone());
                branch_params.portfolio_width = Some(branch_portfolio_width);
                branch_params.batch_width = Some(branch_batch_width);
                let _g = ph_obs::set_thread_tracer(branch_tracer.clone());
                let r = synthesize_one(spec, device, opts, &branch_params, mode, Some(mine));
                if r.is_ok() {
                    other.store(true, Ordering::Relaxed);
                    branch_tracer.count("race.first_win", 1);
                    branch_tracer
                        .msg_with(Level::Info, || format!("race: {branch} finished first"));
                }
                r
            }
        };
    let (free, loopy) = std::thread::scope(|scope| {
        let h_free = scope.spawn(race(
            LoopMode::LoopFree,
            flag_free.clone(),
            flag_loopy.clone(),
            "loop-free",
        ));
        let h_loopy = scope.spawn(race(
            LoopMode::Loopy,
            flag_loopy.clone(),
            flag_free.clone(),
            "loopy",
        ));
        let free = h_free.join().expect("loop-free worker panicked");
        let loopy = h_loopy.join().expect("loopy worker panicked");
        (free, loopy)
    });
    drop(race_span);

    let report = |winner: &'static str, out: &SynthOutput| {
        base_tracer.count(
            if winner == "loop-free" {
                "race.win.loop_free"
            } else {
                "race.win.loopy"
            },
            1,
        );
        base_tracer.msg_with(Level::Info, || {
            format!(
                "race: {winner} skeleton wins with {} entries in {:.3}s",
                out.program.entry_count(),
                out.stats.wall.as_secs_f64()
            )
        });
    };
    match (free, loopy) {
        (Ok(a), Ok(b)) => {
            // Prefer fewer entries; tie-break on fewer states.
            let (ua, ub) = (a.program.usage(), b.program.usage());
            if (ub.tcam_entries, ub.states) < (ua.tcam_entries, ua.states) {
                report("loopy", &b);
                Ok(b)
            } else {
                report("loop-free", &a);
                Ok(a)
            }
        }
        (Ok(a), Err(_)) => {
            report("loop-free", &a);
            Ok(a)
        }
        (Err(_), Ok(b)) => {
            report("loopy", &b);
            Ok(b)
        }
        // Both failed: a Timeout (likely just the interrupted loser) is the
        // least informative error, so prefer reporting the other kind.
        (Err(a), Err(b)) => {
            base_tracer.msg(Level::Warn, "race: both branches failed");
            Err(match (&a, &b) {
                (SynthError::Timeout(_), SynthError::Timeout(_)) => a,
                (SynthError::Timeout(_), _) => b,
                _ => a,
            })
        }
    }
}
