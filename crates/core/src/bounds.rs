//! Unrolling and input-length bounds for the CEGIS encodings.
//!
//! The synthesis and verification formulas unroll the FSM for `K`
//! iterations over inputs of exactly `L` bits.  Both bounds come from a
//! longest-path computation over the product graph of (spec state × cursor
//! position): every state visit that consumes no input and returns to the
//! same position would make the spec unbounded, which is rejected.

use ph_ir::{analysis, NextState, ParserSpec, StateId};

/// Bounds governing one synthesis run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bounds {
    /// Verification input width in bits.
    pub input_bits: usize,
    /// Max spec state visits on any `input_bits`-bit input.
    pub spec_iters: usize,
    /// Max field extractions on any `input_bits`-bit input (the hardware
    /// skeleton performs one extraction per state visit, so its unrolling
    /// depth is `impl_iters`).
    pub impl_iters: usize,
}

/// Bits consumed by one visit of state `s` (max widths).
fn state_consumption(spec: &ParserSpec, s: StateId) -> usize {
    spec.state(s)
        .extracts
        .iter()
        .map(|&f| spec.field(f).width)
        .sum()
}

/// Longest path in the (state, position) product graph starting from
/// `(start, 0)`, with two weights: state visits and field extractions.
/// Returns `None` when a zero-consumption cycle is reachable (the spec can
/// loop forever on a finite input).
fn product_longest_path(spec: &ParserSpec, max_bits: usize) -> Option<(usize, usize)> {
    let n = spec.states.len();
    // memo[(s, pos)] = (visits, extractions) on the longest suffix.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Unvisited,
        InProgress,
        Done(usize, usize),
    }
    let mut memo = vec![Mark::Unvisited; n * (max_bits + 1)];

    fn go(
        spec: &ParserSpec,
        s: StateId,
        pos: usize,
        max_bits: usize,
        memo: &mut [Mark],
    ) -> Option<(usize, usize)> {
        let idx = s.0 * (max_bits + 1) + pos;
        match memo[idx] {
            Mark::Done(v, e) => return Some((v, e)),
            Mark::InProgress => return None, // zero-consumption cycle
            Mark::Unvisited => {}
        }
        memo[idx] = Mark::InProgress;

        let consumed = state_consumption(spec, s);
        let next_pos = pos + consumed;
        let extractions = spec.state(s).extracts.len();

        let mut best = (1usize, extractions);
        if next_pos <= max_bits {
            let st = spec.state(s);
            let nexts = st
                .transitions
                .iter()
                .map(|t| t.next)
                .chain(std::iter::once(st.default));
            for nx in nexts {
                if let NextState::State(t) = nx {
                    // Successor must still be able to run; if it cannot even
                    // start extracting, the run ends there (OutOfInput), so
                    // only recurse while within the input.
                    let (v, e) = go(spec, t, next_pos, max_bits, memo)?;
                    best.0 = best.0.max(1 + v);
                    best.1 = best.1.max(extractions + e);
                }
            }
        }
        memo[idx] = Mark::Done(best.0, best.1);
        Some(best)
    }

    go(spec, spec.start, 0, max_bits, &mut memo)
}

/// Computes the unrolling bounds for `spec`.
///
/// `loop_cap` seeds the input-length estimate for loopy specifications (the
/// fixpoint converges in a few rounds).
///
/// # Errors
///
/// Returns a message when the spec has a zero-consumption cycle.
pub fn compute_bounds(spec: &ParserSpec, loop_cap: usize) -> Result<Bounds, String> {
    // Seed the input length from a capped iteration count, then fix up.
    let mut input_bits = analysis::max_bits_consumed(spec, loop_cap.max(4));
    for _ in 0..4 {
        let (visits, _) = product_longest_path(spec, input_bits)
            .ok_or_else(|| "spec has a zero-consumption loop".to_string())?;
        let l2 = analysis::max_bits_consumed(spec, visits);
        if l2 <= input_bits {
            break;
        }
        input_bits = l2;
    }
    let (spec_iters, extractions) = product_longest_path(spec, input_bits)
        .ok_or_else(|| "spec has a zero-consumption loop".to_string())?;
    Ok(Bounds {
        input_bits,
        spec_iters,
        // +2: the skeleton's synthetic entry state and the final
        // accept/reject transition.
        impl_iters: extractions + 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_bits::Ternary;
    use ph_ir::{Field, FieldId, KeyPart, State, StateId, Transition};

    fn two_state(loopy: bool) -> ParserSpec {
        ParserSpec {
            fields: vec![Field::fixed("a", 4), Field::fixed("b", 4)],
            states: vec![
                State {
                    name: "s0".into(),
                    extracts: vec![FieldId(0)],
                    key: vec![KeyPart::Slice {
                        field: FieldId(0),
                        start: 0,
                        end: 1,
                    }],
                    transitions: vec![Transition {
                        pattern: Ternary::parse("1").unwrap(),
                        next: if loopy {
                            ph_ir::NextState::State(StateId(0))
                        } else {
                            ph_ir::NextState::State(StateId(1))
                        },
                    }],
                    default: ph_ir::NextState::Accept,
                },
                State {
                    name: "s1".into(),
                    extracts: vec![FieldId(1)],
                    key: vec![],
                    transitions: vec![],
                    default: ph_ir::NextState::Accept,
                },
            ],
            start: StateId(0),
        }
    }

    #[test]
    fn loop_free_bounds() {
        let b = compute_bounds(&two_state(false), 8).unwrap();
        assert_eq!(b.input_bits, 8);
        assert_eq!(b.spec_iters, 2);
        assert_eq!(b.impl_iters, 4);
    }

    #[test]
    fn loopy_bounds_grow_with_cap() {
        let b4 = compute_bounds(&two_state(true), 4).unwrap();
        let b8 = compute_bounds(&two_state(true), 8).unwrap();
        assert!(b8.input_bits > b4.input_bits);
        assert!(b8.spec_iters > b4.spec_iters);
        // A loop consuming 4 bits per visit: visits bounded by L/4 + 1.
        assert!(b8.spec_iters <= b8.input_bits / 4 + 1);
    }

    #[test]
    fn zero_consumption_loop_rejected() {
        let mut spec = two_state(true);
        spec.states[0].extracts.clear(); // loop consumes nothing
        spec.states[0].key = vec![KeyPart::Lookahead { start: 0, end: 1 }];
        assert!(compute_bounds(&spec, 8).is_err());
    }
}
