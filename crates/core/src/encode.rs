//! The generic FSM-simulation encoding — φ_common of Fig. 9.
//!
//! [`encode_impl`] unrolls the skeleton machine for `K` iterations over an
//! input term of `L` bits and returns terms for the final status, the
//! per-field defined flags and the per-field values.  The same function
//! serves both CEGIS phases: during synthesis the input is a *constant*
//! (a test case) and the skeleton terms are variables; during verification
//! the input is a variable and the skeleton terms are constants.  Constant
//! folding in the term pool specializes each case automatically.

use crate::skeleton::{GroupSource, Shape, SkelTerms};
use ph_bits::bits_for;
use ph_smt::{Smt, Term};
use std::collections::HashMap;

/// Terms describing the machine's final configuration.
pub struct ImplOutcome {
    /// Final state code (compare against accept/reject codes).
    pub status: Term,
    /// Per-field (by `FieldId` index) defined flags.
    pub defined: Vec<Term>,
    /// Per-field values (reduced widths).
    pub values: Vec<Term>,
}

/// Unrolls the skeleton over `input` (width `L`) for `k` iterations.
pub fn encode_impl(
    smt: &mut Smt,
    shape: &Shape,
    terms: &SkelTerms,
    input: Term,
    k: usize,
) -> ImplOutcome {
    let l = smt.width(input) as usize;
    let s_count = shape.state_count();
    let n_slots = shape.slots.len();
    let sbits = shape.state_bits();
    let ebits = shape.ext_bits();
    let kw = shape.canon_width as u32;
    let pbits = bits_for(l.max(1) as u64);
    let acc = smt.const_u64(shape.accept_code() as u64, sbits);
    let ooi = smt.const_u64(shape.ooi_code() as u64, sbits);
    let rej = smt.const_u64(shape.reject_code() as u64, sbits);

    let num_fields = shape.field_widths.len();
    let mut cur = smt.const_u64(0, sbits);
    let mut pos = smt.const_u64(0, pbits);
    let mut defined: Vec<Term> = (0..num_fields).map(|_| smt.ff()).collect();
    let mut values: Vec<Term> = shape
        .field_widths
        .iter()
        .map(|&w| smt.const_u64(0, w.max(1) as u32))
        .collect();

    for _l in 0..k {
        let halted = smt.ule(acc, cur);

        // --- group values (shared across states) -----------------------
        let mut group_vals = Vec::with_capacity(shape.groups.len());
        for grp in &shape.groups {
            let gv = match grp.source {
                GroupSource::Slice { field, start, end } => {
                    let v = smt.extract(values[field.0], start as u32, end as u32);
                    let z = smt.const_u64(0, (end - start) as u32);
                    smt.ite(defined[field.0], v, z)
                }
                GroupSource::Lookahead { start, end } => {
                    lookahead_at(smt, input, &pos, pbits, start, end, l)
                }
            };
            group_vals.push(gv);
        }

        // --- per-state key and first-match next ------------------------
        // next = mux over current state of the state's first-match target.
        let mut next = rej;
        for s in (0..s_count).rev() {
            // Canonical key: allocated groups contribute, others read zero.
            let mut key: Option<Term> = None;
            for (g, grp) in shape.groups.iter().enumerate() {
                let z = smt.const_u64(0, grp.width as u32);
                let part = smt.ite(terms.alloc[s][g], group_vals[g], z);
                key = Some(match key {
                    None => part,
                    Some(acc_k) => smt.concat(acc_k, part),
                });
            }
            let key = key.unwrap_or_else(|| smt.const_u64(0, kw));

            // First-match over the entry list (reverse fold).
            let mut sn = rej;
            for e in terms.entries[s].iter().rev() {
                let km = smt.and(key, e.mask);
                let vm = smt.and(e.value, e.mask);
                let hit = smt.eq(km, vm);
                let m = smt.and(e.active, hit);
                sn = smt.ite(m, e.next, sn);
            }
            let sc = smt.const_u64(s as u64, sbits);
            let here = smt.eq(cur, sc);
            next = smt.ite(here, sn, next);
        }

        // --- extraction on entering a slot state ------------------------
        // A slot extracts its whole field run; cache the position-muxed
        // input slice per (offset-within-run, width) pair.
        let mut slice_cache: HashMap<(usize, usize), Term> = HashMap::new();
        let mut new_pos = pos;
        let mut ooi_flag = smt.ff();
        let mut new_defined = defined.clone();
        let mut new_values = values.clone();
        for t in 1..s_count {
            let tc = smt.const_u64(t as u64, sbits);
            let entered = smt.eq(next, tc);
            for slot in 1..=n_slots {
                let slot_c = smt.const_u64(slot as u64, ebits);
                let chosen = smt.eq(terms.ext_sel[t], slot_c);
                let sel = smt.and(entered, chosen);
                let run = &shape.slots[slot - 1];
                let total: usize = run.iter().map(|f| shape.field_widths[f.0].max(1)).sum();

                // Per-field fit gating: the machine extracts a run field by
                // field and keeps partial results when it runs out of input
                // (the OutOfInput semantics), so each field is written iff
                // its own slice still fits.  Fit is monotone along the run.
                let mut off = 0usize;
                for f in run {
                    let w = shape.field_widths[f.0].max(1);
                    if off + w > l {
                        break; // this and all later fields can never fit
                    }
                    let maxp = smt.const_u64((l - off - w) as u64, pbits);
                    let fits_f = smt.ule(pos, maxp);
                    let ok = smt.and(sel, fits_f);
                    let extracted = match slice_cache.get(&(off, w)) {
                        Some(&cached) => cached,
                        None => {
                            // Mux over every position at which this field's
                            // slice still fits (covers any run sharing the
                            // same offset/width, so the cache is sound).
                            let mut v = smt.const_u64(0, w as u32);
                            for p in (0..=(l - off - w)).rev() {
                                let pc = smt.const_u64(p as u64, pbits);
                                let at = smt.eq(pos, pc);
                                let sl = smt.extract(input, (p + off) as u32, (p + off + w) as u32);
                                v = smt.ite(at, sl, v);
                            }
                            slice_cache.insert((off, w), v);
                            v
                        }
                    };
                    new_values[f.0] = smt.ite(ok, extracted, new_values[f.0]);
                    let tt = smt.tt();
                    new_defined[f.0] = smt.ite(ok, tt, new_defined[f.0]);
                    off += w;
                }
                // The whole-run fit decides between advancing and OOI.
                if total > l {
                    ooi_flag = smt.or(ooi_flag, sel);
                } else {
                    let maxp = smt.const_u64((l - total) as u64, pbits);
                    let fits = smt.ule(pos, maxp);
                    let nofit = smt.not(fits);
                    let bad = smt.and(sel, nofit);
                    ooi_flag = smt.or(ooi_flag, bad);
                    let ok = smt.and(sel, fits);
                    let wc = smt.const_u64(total as u64, pbits);
                    let adv = smt.add(pos, wc);
                    new_pos = smt.ite(ok, adv, new_pos);
                }
            }
        }

        // --- commit, with halting absorption ----------------------------
        let stepped = smt.ite(ooi_flag, ooi, next);
        cur = smt.ite(halted, cur, stepped);
        pos = smt.ite(halted, pos, new_pos);
        for f in 0..num_fields {
            defined[f] = smt.ite(halted, defined[f], new_defined[f]);
            values[f] = smt.ite(halted, values[f], new_values[f]);
        }
    }

    ImplOutcome {
        status: cur,
        defined,
        values,
    }
}

/// The value of lookahead bits `[start, end)` past a symbolic cursor:
/// a mux over every cursor position, with bits beyond the input reading
/// zero (hardware padding).
fn lookahead_at(
    smt: &mut Smt,
    input: Term,
    pos: &Term,
    pbits: u32,
    start: usize,
    end: usize,
    l: usize,
) -> Term {
    let w = end - start;
    let mut v = smt.const_u64(0, w as u32);
    for p in (0..=l).rev() {
        let lo = (p + start).min(l);
        let hi = (p + end).min(l);
        let bits = if lo < hi {
            let head = smt.extract(input, lo as u32, hi as u32);
            if hi - lo < w {
                let pad = smt.const_u64(0, (w - (hi - lo)) as u32);
                smt.concat(head, pad)
            } else {
                head
            }
        } else {
            smt.const_u64(0, w as u32)
        };
        let pc = smt.const_u64(p as u64, pbits);
        let at = smt.eq(*pos, pc);
        v = smt.ite(at, bits, v);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::reduce_spec;
    use crate::skeleton::{build_shape, concrete_terms, ConcreteEntry, ConcreteSkel};
    use crate::OptConfig;
    use ph_bits::BitString;
    use ph_hw::DeviceProfile;
    use ph_p4f::parse_parser;

    /// Hand-build the Fig. 7 Impl2 as a concrete skeleton and check the
    /// encoding's outputs against the spec simulator on all inputs.
    #[test]
    fn encoding_matches_simulator_on_concrete_skeleton() {
        let spec = parse_parser(
            r#"
            header h_t { f0 : 4; f1 : 4; }
            parser {
                state start {
                    extract(h_t.f0);
                    transition select(h_t.f0[0:1]) {
                        0b0 : s1;
                        default : accept;
                    }
                }
                state s1 { extract(h_t.f1); transition accept; }
            }
            "#,
        )
        .unwrap();
        let opts = OptConfig::all();
        let red = reduce_spec(&spec, opts).unwrap();
        let dev = DeviceProfile::tofino();
        let shape = build_shape(&red, &dev, opts, false, None).unwrap();
        assert_eq!(shape.slots.len(), 2);
        assert_eq!(shape.canon_width, 1);

        // Concrete skeleton: entry -> slot1 (extract f0); slot1 keys on the
        // group (f0 bit 0): 0 -> slot2 (extract f1), else accept; slot2
        // always accepts.
        let acc = shape.accept_code();
        let conc = ConcreteSkel {
            alloc: vec![vec![false], vec![true], vec![false]],
            entries: vec![
                vec![ConcreteEntry {
                    value: BitString::zeros(1),
                    mask: BitString::zeros(1),
                    next: 1,
                }],
                vec![
                    ConcreteEntry {
                        value: BitString::from_u64(0, 1),
                        mask: BitString::from_u64(1, 1),
                        next: 2,
                    },
                    ConcreteEntry {
                        value: BitString::zeros(1),
                        mask: BitString::zeros(1),
                        next: acc,
                    },
                ],
                vec![ConcreteEntry {
                    value: BitString::zeros(1),
                    mask: BitString::zeros(1),
                    next: acc,
                }],
            ],
            ext: vec![0, 1, 2],
            stage: vec![0, 0, 0],
        };

        for val in 0..=255u64 {
            let input = BitString::from_u64(val, 8);
            let expect = ph_ir::simulate(&red.spec, &input, 8);
            let mut smt = Smt::new();
            let terms = concrete_terms(&mut smt, &shape, &conc);
            let it = smt.const_bits(input.clone());
            let out = encode_impl(&mut smt, &shape, &terms, it, 4);
            assert!(smt.check().is_sat());
            let status = smt.model_u64(out.status) as usize;
            assert_eq!(
                status == shape.accept_code(),
                expect.status == ph_ir::ParseStatus::Accept,
                "input {input}"
            );
            for f in 0..2 {
                let fid = ph_ir::FieldId(f);
                let def = smt.model_bool(out.defined[f]);
                assert_eq!(
                    def,
                    expect.dict.get(fid).is_some(),
                    "defined f{f} input {input}"
                );
                if def {
                    let v = smt.model_value(out.values[f]);
                    assert_eq!(
                        &v,
                        expect.dict.get(fid).unwrap(),
                        "value f{f} input {input}"
                    );
                }
            }
        }
    }

    /// A skeleton that extracts past the end of the input must land in the
    /// out-of-input status, not accept.
    #[test]
    fn over_extraction_is_flagged() {
        let spec = parse_parser(
            r#"
            header h_t { f0 : 4; }
            parser {
                state start { extract(h_t); transition accept; }
            }
            "#,
        )
        .unwrap();
        // Keep full field widths (Opt2 would shrink the keyless field to
        // one bit and the loop would not run out of input within k).
        let mut opts = OptConfig::all();
        opts.opt2_bitwidth = false;
        let red = reduce_spec(&spec, opts).unwrap();
        let dev = DeviceProfile::tofino();
        // Loopy so the backward transition is representable.
        let shape = build_shape(&red, &dev, opts, true, None).unwrap();
        // Extract f0 twice: 8 bits needed, input only 4.
        let conc = ConcreteSkel {
            alloc: vec![vec![]; 2],
            entries: vec![
                vec![ConcreteEntry {
                    value: BitString::zeros(1),
                    mask: BitString::zeros(1),
                    next: 1,
                }],
                vec![ConcreteEntry {
                    value: BitString::zeros(1),
                    mask: BitString::zeros(1),
                    next: 1, // loop back: extract again
                }],
            ],
            ext: vec![0, 1],
            stage: vec![0, 0],
        };
        let mut smt = Smt::new();
        let terms = concrete_terms(&mut smt, &shape, &conc);
        let it = smt.const_bits(BitString::from_u64(0b1010, 4));
        let out = encode_impl(&mut smt, &shape, &terms, it, 4);
        assert!(smt.check().is_sat());
        assert_eq!(smt.model_u64(out.status) as usize, shape.ooi_code());
    }
}
