//! Differential regression tests for the incremental verification engine:
//! the persistent assumption-pinned verifier must return the same verdicts
//! as the old fresh-solver-per-candidate path, and any counterexample
//! either path returns must be a genuine spec/implementation mismatch.

use ph_bits::BitString;
use ph_core::bounds::compute_bounds;
use ph_core::cegis::{shape_k, verify_candidate_fresh, IncrementalVerifier, Verdict};
use ph_core::encode::encode_impl;
use ph_core::reduce::{reduce_spec, Reduced};
use ph_core::skeleton::{build_shape, concrete_terms, ConcreteEntry, ConcreteSkel, Shape};
use ph_core::{OptConfig, SynthParams, Synthesizer};
use ph_hw::DeviceProfile;
use ph_ir::{FieldId, ParseStatus, ParserSpec};
use ph_p4f::parse_parser;
use ph_smt::Smt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// The Fig. 7 two-state spec (Spec2): extract f0, branch on its first bit,
/// optionally extract f1.
fn fig7_spec() -> ParserSpec {
    parse_parser(
        r#"
        header h_t { f0 : 4; f1 : 4; }
        parser {
            state start {
                extract(h_t.f0);
                transition select(h_t.f0[0:1]) {
                    0b0 : s1;
                    default : accept;
                }
            }
            state s1 { extract(h_t.f1); transition accept; }
        }
        "#,
    )
    .unwrap()
}

struct Fixture {
    red: Reduced,
    shape: Shape,
    l: usize,
    k_impl: usize,
    k_spec: usize,
}

fn fig7_fixture() -> Fixture {
    let spec = fig7_spec();
    let opts = OptConfig::all();
    let red = reduce_spec(&spec, opts).unwrap();
    let dev = DeviceProfile::tofino();
    let bounds = compute_bounds(&red.spec, 8).unwrap();
    let shape = build_shape(&red, &dev, opts, false, None).unwrap();
    let l = bounds.input_bits.max(1);
    let k_impl = shape_k(&shape, &bounds);
    let k_spec = bounds.spec_iters + 1;
    Fixture {
        red,
        shape,
        l,
        k_impl,
        k_spec,
    }
}

/// The hand-built correct implementation (Impl2 of Fig. 7).
fn correct_candidate(shape: &Shape) -> ConcreteSkel {
    let acc = shape.accept_code();
    ConcreteSkel {
        alloc: vec![vec![false], vec![true], vec![false]],
        entries: vec![
            vec![ConcreteEntry {
                value: BitString::zeros(1),
                mask: BitString::zeros(1),
                next: 1,
            }],
            vec![
                ConcreteEntry {
                    value: BitString::from_u64(0, 1),
                    mask: BitString::from_u64(1, 1),
                    next: 2,
                },
                ConcreteEntry {
                    value: BitString::zeros(1),
                    mask: BitString::zeros(1),
                    next: acc,
                },
            ],
            vec![ConcreteEntry {
                value: BitString::zeros(1),
                mask: BitString::zeros(1),
                next: acc,
            }],
        ],
        ext: vec![0, 1, 2],
        stage: vec![0, 0, 0],
    }
}

/// True iff `input` genuinely distinguishes the candidate from the spec
/// (different acceptance class or different extraction dictionary) — the
/// property any returned counterexample must have.
fn is_real_mismatch(fx: &Fixture, conc: &ConcreteSkel, input: &BitString) -> bool {
    let expect = ph_ir::simulate(&fx.red.spec, input, fx.k_spec + 2);
    let mut smt = Smt::new();
    let terms = concrete_terms(&mut smt, &fx.shape, conc);
    let it = smt.const_bits(input.clone());
    let out = encode_impl(&mut smt, &fx.shape, &terms, it, fx.k_impl);
    assert!(smt.check().is_sat());
    let status = smt.model_u64(out.status) as usize;
    let want = match expect.status {
        ParseStatus::Accept => fx.shape.accept_code(),
        ParseStatus::Reject => fx.shape.reject_code(),
        _ => fx.shape.ooi_code(),
    };
    if status != want {
        return true;
    }
    if expect.status != ParseStatus::Accept {
        return false; // non-accepting outcomes only compare status
    }
    for (f, _) in fx.shape.field_widths.iter().enumerate() {
        let def = smt.model_bool(out.defined[f]);
        match expect.dict.get(FieldId(f)) {
            Some(v) => {
                if !def || &smt.model_value(out.values[f]) != v {
                    return true;
                }
            }
            None => {
                if def {
                    return true;
                }
            }
        }
    }
    false
}

/// Checks one candidate through both verification paths and asserts they
/// agree; counterexamples from either path must be real mismatches.
fn check_both(
    fx: &Fixture,
    verifier: &mut IncrementalVerifier<'_>,
    conc: &ConcreteSkel,
    expect_verified: bool,
    what: &str,
) {
    let flag = Arc::new(AtomicBool::new(false));
    let fresh = verify_candidate_fresh(
        &fx.shape,
        &fx.red.spec,
        conc,
        fx.l,
        fx.k_impl,
        fx.k_spec,
        &flag,
    )
    .unwrap();
    let incr = verifier.verify(conc);
    match (&fresh, &incr) {
        (Verdict::Verified, Verdict::Verified) => {
            assert!(
                expect_verified,
                "{what}: both paths verified a broken candidate"
            );
        }
        (Verdict::Counterexample(cf), Verdict::Counterexample(ci)) => {
            assert!(
                !expect_verified,
                "{what}: both paths rejected a correct candidate"
            );
            // Different SAT searches may surface different witnesses; each
            // must independently be a genuine mismatch.
            assert!(
                is_real_mismatch(fx, conc, cf),
                "{what}: fresh cex {cf} is bogus"
            );
            assert!(
                is_real_mismatch(fx, conc, ci),
                "{what}: incremental cex {ci} is bogus"
            );
        }
        _ => panic!("{what}: paths disagree: fresh={fresh:?} incremental={incr:?}"),
    }
}

#[test]
fn incremental_agrees_with_fresh_on_fig7() {
    let fx = fig7_fixture();
    let flag = Arc::new(AtomicBool::new(false));
    // ONE persistent verifier serves every candidate below.
    let mut verifier =
        IncrementalVerifier::new(&fx.shape, &fx.red.spec, fx.l, fx.k_impl, fx.k_spec, &flag)
            .unwrap();

    let good = correct_candidate(&fx.shape);
    check_both(&fx, &mut verifier, &good, true, "correct candidate");

    // Broken: the keyed branch goes straight to accept, so f1 is never
    // extracted on the f0-bit-0 path.
    let mut b1 = good.clone();
    b1.entries[1][0].next = fx.shape.accept_code();
    check_both(&fx, &mut verifier, &b1, false, "skipped extraction");

    // Broken: no catch-all in the keyed state — the other branch falls
    // through to an empty table instead of accepting.
    let mut b2 = good.clone();
    b2.entries[1].truncate(1);
    check_both(&fx, &mut verifier, &b2, false, "missing catch-all");

    // Broken: key group deallocated, so the match sees zeros and every
    // input takes the extraction branch.
    let mut b3 = good.clone();
    b3.alloc[1][0] = false;
    b3.entries[1][0].mask = BitString::from_u64(1, 1);
    check_both(&fx, &mut verifier, &b3, false, "deallocated key group");

    // The pins from the broken candidates must not stick: the correct
    // candidate still verifies on the same persistent instance.
    check_both(
        &fx,
        &mut verifier,
        &good,
        true,
        "correct candidate (revisited)",
    );
}

/// End-to-end: a full synthesis run constructs exactly one verification
/// solver regardless of how many candidates and shrink trials it checks.
#[test]
fn one_verifier_build_per_synthesis_run() {
    let spec = fig7_spec();
    let out = Synthesizer::new(
        DeviceProfile::tofino(),
        OptConfig {
            opt7_parallel: false,
            ..OptConfig::all()
        },
    )
    .with_params(SynthParams {
        timeout: Some(Duration::from_secs(60)),
        ..Default::default()
    })
    .synthesize(&spec)
    .expect("fig7 synthesizes");
    assert_eq!(
        out.stats.verify_solver_builds, 1,
        "verifier must be built exactly once"
    );
    assert!(
        out.stats.verify_checks >= 1,
        "at least the final candidate is verified"
    );
    assert!(out.program.entry_count() >= 1);
}
