//! Integration tests of the differential fuzzing oracle: end-to-end gate
//! inside `synthesize()`, corruption detection with minimal shrunk
//! witnesses, and the machine-readable divergence reports.

use ph_baseline::translate::direct_translate;
use ph_core::fuzz::{check_e2e, fuzz, FuzzConfig};
use ph_core::{OptConfig, SynthParams, Synthesizer};
use ph_hw::{run_program, DeviceProfile, HwNext};
use ph_ir::simulate;
use ph_obs::Json;
use ph_p4f::parse_parser;

fn two_state_spec() -> ph_ir::ParserSpec {
    parse_parser(
        r#"
        header h_t { ty : 4; }
        header a_t { v : 8; }
        parser {
            state start {
                extract(h_t);
                transition select(h_t.ty) { 7 : pa; default : accept; }
            }
            state pa { extract(a_t); transition accept; }
        }
        "#,
    )
    .unwrap()
}

#[test]
fn synthesize_with_e2e_gate_passes() {
    let spec = two_state_spec();
    let out = Synthesizer::new(DeviceProfile::tofino(), OptConfig::all())
        .with_params(SynthParams {
            e2e_samples: 300,
            ..Default::default()
        })
        .synthesize(&spec)
        .expect("clean synthesis must pass the fuzzing gate");
    assert!(out.program.entry_count() >= 1);
}

#[test]
fn corruption_is_caught_with_a_minimal_witness() {
    let spec = two_state_spec();
    let device = DeviceProfile::tofino();
    let mut prog = direct_translate(&spec, &device);
    // Plant a bug: the `ty == 7` branch rejects instead of parsing `a_t`.
    let mut corrupted = false;
    for st in &mut prog.states {
        for e in &mut st.entries {
            if e.pattern.to_string() == "0111" {
                e.next = HwNext::Reject;
                corrupted = true;
            }
        }
    }
    assert!(
        corrupted,
        "expected the 0111 entry in the direct translation"
    );

    let report = fuzz(&spec, &[("direct", &prog)], &FuzzConfig::default());
    assert!(!report.clean(), "planted corruption not caught");
    let d = &report.divergences[0];

    // The witness reproduces: spec and program still disagree on it.
    let s = simulate(&spec, &d.input, 64);
    let h = run_program(&prog, &spec.fields, &d.input, 256);
    assert!(
        s.status != h.status || s.dict != h.dict,
        "reported witness does not reproduce"
    );
    // It is minimal: the bug needs `ty = 0111` plus the 8 bits of `a_t`
    // (anything shorter runs out of input on both sides) — 12 bits, and
    // the normalization pass zeroes everything the divergence doesn't need.
    assert_eq!(
        d.input.to_string(),
        "011100000000",
        "not minimal: {}",
        d.input
    );
    assert!(d.shrink_steps > 0, "shrinking never ran");
    // The state paths point at the diverging branch.
    assert!(!d.spec_path.is_empty());
    assert!(!d.impl_path.is_empty());
}

#[test]
fn check_e2e_gates_on_divergence() {
    let spec = two_state_spec();
    let device = DeviceProfile::tofino();
    let clean = direct_translate(&spec, &device);
    let stats = check_e2e(&spec, &clean, 1, 500).expect("clean program must pass");
    assert!(stats.packets > 0);

    let mut bad = clean.clone();
    for st in &mut bad.states {
        for e in &mut st.entries {
            if e.pattern.to_string() == "0111" {
                e.next = HwNext::Reject;
            }
        }
    }
    let d = check_e2e(&spec, &bad, 1, 500).expect_err("corruption must be caught");
    assert!(d.shrink_steps > 0);
    // The report is machine-readable and schema-complete.
    let j = Json::parse(&d.to_json().to_string()).unwrap();
    for key in [
        "subject",
        "generator",
        "input",
        "kind",
        "spec_status",
        "impl_status",
    ] {
        assert!(j.get(key).and_then(Json::as_str).is_some(), "missing {key}");
    }
    for key in ["input_bits", "shrink_steps"] {
        assert!(j.get(key).and_then(Json::as_i64).is_some(), "missing {key}");
    }
    for key in ["spec_path", "impl_path"] {
        assert!(j.get(key).and_then(Json::as_arr).is_some(), "missing {key}");
    }
    assert!(j.get("first_diff_field").is_some());
}

#[test]
fn dict_corruption_reports_first_diff_field() {
    let spec = two_state_spec();
    let device = DeviceProfile::tofino();
    let mut prog = direct_translate(&spec, &device);
    // Plant a subtler bug: the `ty == 7` branch accepts without extracting
    // `a_t` — statuses agree, dictionaries differ.
    for st in &mut prog.states {
        for e in &mut st.entries {
            if e.pattern.to_string() == "0111" {
                e.next = HwNext::Accept;
                e.extracts.clear();
            }
        }
    }
    // Shrinking may trade the dictionary mismatch for an even smaller
    // status mismatch (truncation makes the spec run out of input while
    // the corrupted program still accepts), so inspect the raw reports.
    let cfg = FuzzConfig {
        shrink: false,
        max_divergences: 64,
        ..FuzzConfig::default()
    };
    let report = fuzz(&spec, &[("direct", &prog)], &cfg);
    assert!(!report.clean());
    let dict_div = report
        .divergences
        .iter()
        .find(|d| d.first_diff_field.is_some())
        .expect("a dictionary divergence naming the field");
    assert_eq!(dict_div.first_diff_field.as_deref(), Some("a_t.v"));
}
