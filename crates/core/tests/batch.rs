//! Batched multi-candidate CEGIS: forced-width batching must preserve the
//! sequential loop's output quality (the budget descent reaches the same
//! minima either way), populate its own counters coherently, and collapse
//! to the exact sequential path at width 1.

use ph_core::{OptConfig, SynthOutput, SynthParams, Synthesizer};
use ph_hw::DeviceProfile;
use ph_ir::ParserSpec;
use ph_p4f::parse_parser;
use std::time::Duration;

/// The Fig. 7 two-state spec.
fn fig7_spec() -> ParserSpec {
    parse_parser(
        r#"
        header h_t { f0 : 4; f1 : 4; }
        parser {
            state start {
                extract(h_t.f0);
                transition select(h_t.f0[0:1]) {
                    0b0 : s1;
                    default : accept;
                }
            }
            state s1 { extract(h_t.f1); transition accept; }
        }
        "#,
    )
    .unwrap()
}

/// A three-way dispatch spec: enough structure for several CEGIS
/// iterations and a real entry-minimization descent.
fn dispatch_spec() -> ParserSpec {
    parse_parser(
        r#"
        header eth { ty : 4; }
        header v4 { proto : 4; }
        header v6 { nh : 4; }
        parser {
            state start {
                extract(eth.ty);
                transition select(eth.ty) {
                    1 : pv4;
                    2 : pv6;
                    default : reject;
                }
            }
            state pv4 {
                extract(v4.proto);
                transition select(v4.proto) {
                    3 : accept;
                    default : reject;
                }
            }
            state pv6 { extract(v6.nh); transition accept; }
        }
        "#,
    )
    .unwrap()
}

/// Runs one synthesis with batching forced to `width` (`None` = feature
/// off), Opt7 and the portfolio disabled so the comparison is the loop
/// structure alone.
fn run(spec: &ParserSpec, width: Option<usize>) -> SynthOutput {
    let opts = OptConfig {
        opt7_parallel: false,
        portfolio: false,
        batch: width.is_some(),
        ..OptConfig::all()
    };
    Synthesizer::new(DeviceProfile::tofino(), opts)
        .with_params(SynthParams {
            timeout: Some(Duration::from_secs(120)),
            batch_width: width,
            ..Default::default()
        })
        .synthesize(spec)
        .expect("spec synthesizes")
}

#[test]
fn forced_batch_matches_sequential_quality() {
    for spec in [fig7_spec(), dispatch_spec()] {
        let seq = run(&spec, None);
        let bat = run(&spec, Some(4));
        // The descent reaches the same minima regardless of how many
        // candidates each solver call is milked for.
        assert_eq!(bat.program.entry_count(), seq.program.entry_count());
        assert_eq!(bat.program.stages_used(), seq.program.stages_used());

        // Sequential runs never open a harvest round or drop duplicates.
        assert_eq!(seq.stats.batch_rounds, 0);
        assert_eq!(seq.stats.batch_candidates, 0);
        assert_eq!(seq.stats.batch_cex_harvested, 0);
        assert_eq!(seq.stats.cex_dup_dropped, 0);
        assert_eq!(seq.stats.verify_solver_builds, 1);

        // Batched runs open one round per Sat synth call and the pool
        // never outgrows the width.
        assert!(bat.stats.batch_rounds >= 1, "no batch rounds recorded");
        assert!(bat.stats.batch_candidates >= bat.stats.batch_rounds);
        assert!((1..=4).contains(&bat.stats.verify_solver_builds));
        // Candidate checks cover at least every synth round.
        assert!(bat.stats.verify_checks >= bat.stats.batch_candidates as usize);
    }
}

#[test]
fn test_case_accounting_is_coherent() {
    // 3 initial tests, plus exactly the distinct counterexamples.
    for width in [None, Some(2), Some(4)] {
        let out = run(&dispatch_spec(), width);
        let s = &out.stats;
        assert_eq!(
            s.test_cases as u64,
            3 + s.counterexamples as u64 - s.cex_dup_dropped,
            "width {width:?}: test cases != initial + distinct cex",
        );
        assert!(s.batch_cex_harvested <= s.counterexamples as u64);
    }
}

#[test]
fn batch_width_one_equals_batch_off() {
    for spec in [fig7_spec(), dispatch_spec()] {
        let off = run(&spec, None);
        let w1 = run(&spec, Some(1));
        // Width 1 takes the identical sequential code path: same program,
        // same trajectory, same counters.
        assert_eq!(w1.program, off.program);
        assert_eq!(w1.stats.cegis_iterations, off.stats.cegis_iterations);
        assert_eq!(w1.stats.test_cases, off.stats.test_cases);
        assert_eq!(w1.stats.counterexamples, off.stats.counterexamples);
        assert_eq!(w1.stats.budget_levels, off.stats.budget_levels);
        assert_eq!(w1.stats.verify_checks, off.stats.verify_checks);
        assert_eq!(w1.stats.shrink_trials, off.stats.shrink_trials);
        assert_eq!(w1.stats.shrink_accepted, off.stats.shrink_accepted);
        assert_eq!(w1.stats.batch_rounds, 0);
        assert_eq!(w1.stats.verify_solver_builds, 1);
        assert_eq!(
            w1.stats.synth_sat.conflicts, off.stats.synth_sat.conflicts,
            "synth solver trajectory diverged at width 1"
        );
        assert_eq!(
            w1.stats.verify_sat.conflicts,
            off.stats.verify_sat.conflicts
        );
    }
}

#[test]
fn batch_counters_appear_in_json() {
    let out = run(&fig7_spec(), Some(2));
    let j = out.stats.to_json();
    for key in [
        "batch_rounds",
        "batch_candidates",
        "batch_cex_harvested",
        "cex_dup_dropped",
    ] {
        assert!(j.get(key).is_some(), "stats json missing {key}");
    }
}
