//! Integration test for the observability layer: a real synthesis run with
//! a JSON-lines sink must produce a well-formed trace — every line parses
//! as JSON, timestamps are monotone non-decreasing, span enter/exit events
//! balance — and the run's `SynthStats` must agree with the trace about
//! what happened.

use ph_core::{OptConfig, SynthParams, Synthesizer};
use ph_hw::DeviceProfile;
use ph_obs::{Json, JsonlSink, Level, MemorySink, OwnedEvent, Tracer};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The Fig. 7 two-state spec.
fn fig7_src() -> &'static str {
    r#"
    header h_t { f0 : 4; f1 : 4; }
    parser {
        state start {
            extract(h_t.f0);
            transition select(h_t.f0[0:1]) {
                0b0 : s1;
                default : accept;
            }
        }
        state s1 { extract(h_t.f1); transition accept; }
    }
    "#
}

/// A `Write` implementation collecting everything into a shared buffer, so
/// the test can read the JSONL stream back without touching the
/// filesystem.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn synthesis_trace_is_wellformed_jsonl() {
    let spec = ph_p4f::parse_parser(fig7_src()).unwrap();
    let buf = SharedBuf::default();
    let tracer =
        Tracer::new(Arc::new(JsonlSink::new(Box::new(buf.clone())))).with_verbosity(Level::Debug);

    let out = Synthesizer::new(
        DeviceProfile::tofino(),
        OptConfig {
            opt7_parallel: false,
            ..OptConfig::all()
        },
    )
    .with_params(SynthParams {
        timeout: Some(Duration::from_secs(60)),
        tracer: Some(tracer.clone()),
        ..Default::default()
    })
    .synthesize(&spec)
    .expect("fig7 synthesizes");
    tracer.flush();

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    assert!(!text.is_empty(), "trace stream is empty");

    let mut last_t = 0i64;
    let mut open: HashMap<i64, String> = HashMap::new();
    let mut entered: Vec<String> = Vec::new();
    let mut counters: HashMap<String, i64> = HashMap::new();
    for (i, line) in text.lines().enumerate() {
        let ev = Json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: invalid JSON ({e}): {line}", i + 1));
        let t = ev
            .get("t_ns")
            .and_then(Json::as_i64)
            .unwrap_or_else(|| panic!("line {}: no t_ns", i + 1));
        assert!(t >= last_t, "line {}: t_ns {t} < previous {last_t}", i + 1);
        last_t = t;
        match ev.get("ev").and_then(Json::as_str).expect("ev kind") {
            "enter" => {
                let id = ev.get("id").and_then(Json::as_i64).expect("enter id");
                let span = ev.get("span").and_then(Json::as_str).expect("enter span");
                assert!(
                    open.insert(id, span.to_string()).is_none(),
                    "span id {id} entered twice"
                );
                entered.push(span.to_string());
            }
            "exit" => {
                let id = ev.get("id").and_then(Json::as_i64).expect("exit id");
                let span = ev.get("span").and_then(Json::as_str).expect("exit span");
                assert_eq!(
                    open.remove(&id).as_deref(),
                    Some(span),
                    "exit does not match enter for id {id}"
                );
                assert!(
                    ev.get("dur_ns").and_then(Json::as_i64).is_some(),
                    "exit without dur_ns"
                );
            }
            "count" => {
                let name = ev.get("name").and_then(Json::as_str).expect("count name");
                let delta = ev.get("delta").and_then(Json::as_i64).expect("count delta");
                *counters.entry(name.to_string()).or_insert(0) += delta;
            }
            "record" => {
                assert!(ev.get("name").and_then(Json::as_str).is_some());
                assert!(ev.get("value").and_then(Json::as_i64).is_some());
            }
            "hist" => {
                // Flush-time summary: name plus the percentile block.
                assert!(ev.get("name").and_then(Json::as_str).is_some());
                for key in ["count", "min", "max", "mean", "p50", "p90", "p99"] {
                    assert!(ev.get(key).is_some(), "hist event missing {key}: {line}");
                }
            }
            "gauge" | "msg" => {}
            other => panic!("line {}: unknown event kind {other:?}", i + 1),
        }
    }
    assert!(open.is_empty(), "spans never exited: {:?}", open.values());

    // The span taxonomy covers the whole pipeline.
    for must in [
        "synth.total",
        "synth.run",
        "synth.reduce",
        "synth.skeleton",
        "verify.encode",
        "cegis.run",
        "cegis.iter",
        "cegis.assume",
        "cegis.synth",
        "cegis.verify",
        "smt.check",
    ] {
        assert!(
            entered.iter().any(|s| s == must),
            "no {must:?} span in trace; saw {entered:?}"
        );
    }

    // One cegis.iter span per counted CEGIS iteration.
    assert_eq!(
        entered.iter().filter(|s| *s == "cegis.iter").count(),
        out.stats.cegis_iterations,
        "cegis.iter spans disagree with stats"
    );

    // Trace counters agree with the returned statistics.
    // The budget descent verifies a candidate at each successful level.
    assert!(
        counters.get("cegis.verified").copied().unwrap_or(0) >= 1,
        "at least one candidate verifies"
    );
    assert_eq!(
        counters.get("cegis.cex").copied().unwrap_or(0),
        out.stats.counterexamples as i64,
        "counterexample counter disagrees with stats"
    );
    assert_eq!(
        counters.get("shrink.trials").copied().unwrap_or(0),
        out.stats.shrink_trials as i64,
        "shrink-trial counter disagrees with stats"
    );
    // The per-call conflict deltas partition the verifier's lifetime total:
    // candidate checks stream as `verify.conflicts`, mask-shrink trials as
    // `shrink.conflicts`, and nothing else runs the verification solver.
    let traced_verify_conflicts = counters.get("verify.conflicts").copied().unwrap_or(0)
        + counters.get("shrink.conflicts").copied().unwrap_or(0);
    assert_eq!(
        traced_verify_conflicts, out.stats.verify_sat.conflicts as i64,
        "per-call conflict deltas must sum to the solver total"
    );
    assert!(out.stats.max_verify_conflicts <= out.stats.verify_sat.conflicts);
}

#[test]
fn stats_carry_solver_effort() {
    let spec = ph_p4f::parse_parser(fig7_src()).unwrap();
    let out = Synthesizer::new(
        DeviceProfile::tofino(),
        OptConfig {
            opt7_parallel: false,
            ..OptConfig::all()
        },
    )
    .with_params(SynthParams {
        timeout: Some(Duration::from_secs(60)),
        ..Default::default()
    })
    .synthesize(&spec)
    .expect("fig7 synthesizes");

    // The synthesis side must have done real CDCL work, and the verifier
    // must have added its encoding clauses.
    assert!(out.stats.synth_sat.decisions > 0);
    assert!(out.stats.synth_sat.clauses_added > 0);
    assert!(out.stats.verify_sat.clauses_added > 0);
    assert!(out.stats.verify_checks >= 1);

    // The JSON payload round-trips through the parser with both SAT blocks.
    let j = Json::parse(&out.stats.to_json().to_string()).unwrap();
    for block in ["synth_sat", "verify_sat"] {
        let conflicts = j
            .get(block)
            .and_then(|b| b.get("conflicts"))
            .and_then(Json::as_i64);
        assert!(conflicts.is_some(), "{block} missing from stats JSON");
    }
    assert!(j.get("wall_s").and_then(Json::as_f64).is_some());
}

#[test]
fn memory_sink_sees_pipeline_counters() {
    let spec = ph_p4f::parse_parser(fig7_src()).unwrap();
    let sink = Arc::new(MemorySink::default());
    let tracer = Tracer::new(sink.clone()).with_verbosity(Level::Trace);
    Synthesizer::new(
        DeviceProfile::tofino(),
        OptConfig {
            opt7_parallel: false,
            ..OptConfig::all()
        },
    )
    .with_params(SynthParams {
        timeout: Some(Duration::from_secs(60)),
        tracer: Some(tracer),
        ..Default::default()
    })
    .synthesize(&spec)
    .expect("fig7 synthesizes");

    let events = sink.events();
    let gauges: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            OwnedEvent::Gauge { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        gauges.contains(&"cegis.search_space_bits"),
        "search-space gauge missing; saw {gauges:?}"
    );
    assert!(
        gauges.contains(&"smt.sat_vars"),
        "bit-blasting gauge missing; saw {gauges:?}"
    );
}
